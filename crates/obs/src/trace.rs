//! RAII spans and per-request traces.
//!
//! A [`Span`] times a named stage: on drop it records into an optional
//! histogram and, when the current thread has an active trace, appends a
//! [`TraceStage`] to it. The [`span!`](crate::span) macro is the idiomatic
//! spelling:
//!
//! ```
//! use grouptravel_obs::{span, Histogram};
//! let hist = Histogram::new();
//! {
//!     let _timed = span!("fcm.train", &hist);
//!     // ... work ...
//! }
//! assert_eq!(hist.snapshot().count(), 1);
//! ```
//!
//! Traces are thread-local and bounded: [`begin`] opens one on the current
//! thread (at most one at a time — nesting yields `None`), spans append to
//! it up to its capacity (overflow is counted, not stored), and
//! [`TraceGuard::finish`] closes it and returns the stage timeline. The
//! engine serves single requests inline on the dispatching thread, which
//! is what makes a thread-local trace capture a whole dispatch; batch
//! fan-out worker threads are outside the trace by design.

use crate::metrics::Histogram;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::time::Instant;

/// One timed stage inside a traced request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceStage {
    /// Stage name (e.g. `"fcm.train"`, `"dispatch.build"`).
    pub stage: String,
    /// Offset of the stage's start from the trace's origin, nanoseconds.
    pub start_ns: u64,
    /// How long the stage ran, nanoseconds.
    pub duration_ns: u64,
}

/// The stage timeline of one traced request. Stages appear in completion
/// order (a stage is recorded when its span drops), so an enclosing stage
/// follows the stages it contains.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceReport {
    /// The recorded stages.
    pub stages: Vec<TraceStage>,
    /// Stages dropped after the trace reached its capacity.
    pub dropped: u64,
}

struct ActiveTrace {
    origin: Instant,
    capacity: usize,
    stages: Vec<TraceStage>,
    dropped: u64,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

/// Opens a trace on the current thread, holding at most `capacity` stages.
/// Returns `None` when a trace is already active (the outer trace keeps
/// collecting; the caller should report an empty timeline).
#[must_use]
pub fn begin(capacity: usize) -> Option<TraceGuard> {
    ACTIVE.with(|slot| {
        let mut slot = slot.borrow_mut();
        if slot.is_some() {
            return None;
        }
        *slot = Some(ActiveTrace {
            origin: Instant::now(),
            capacity,
            stages: Vec::with_capacity(capacity.min(64)),
            dropped: 0,
        });
        Some(TraceGuard { finished: false })
    })
}

/// Whether the current thread is inside an active trace.
#[must_use]
pub fn is_active() -> bool {
    ACTIVE.with(|slot| slot.borrow().is_some())
}

/// Appends a completed stage to the current thread's trace, if one is
/// active. No-op (and allocation-free) otherwise.
pub(crate) fn record_stage(name: &str, start: Instant, end: Instant) {
    ACTIVE.with(|slot| {
        let mut slot = slot.borrow_mut();
        let Some(trace) = slot.as_mut() else {
            return;
        };
        if trace.stages.len() >= trace.capacity {
            trace.dropped += 1;
            return;
        }
        let start_ns = u64::try_from(start.saturating_duration_since(trace.origin).as_nanos())
            .unwrap_or(u64::MAX);
        let duration_ns =
            u64::try_from(end.saturating_duration_since(start).as_nanos()).unwrap_or(u64::MAX);
        trace.stages.push(TraceStage {
            stage: name.to_string(),
            start_ns,
            duration_ns,
        });
    });
}

/// Closes the trace it came from when dropped; [`TraceGuard::finish`]
/// closes it and hands back the timeline. Deliberately `!Send` (traces are
/// thread-local).
pub struct TraceGuard {
    finished: bool,
}

impl TraceGuard {
    /// Ends the trace and returns its stage timeline.
    #[must_use]
    pub fn finish(mut self) -> TraceReport {
        self.finished = true;
        ACTIVE
            .with(|slot| slot.borrow_mut().take())
            .map_or_else(TraceReport::default, |t| TraceReport {
                stages: t.stages,
                dropped: t.dropped,
            })
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        if !self.finished {
            ACTIVE.with(|slot| slot.borrow_mut().take());
        }
    }
}

/// An RAII stage timer. On drop it records its elapsed time into the
/// histogram it was started with (if any) and into the current thread's
/// active trace (if any). Constructed via [`Span::start`] or the
/// [`span!`](crate::span) macro.
pub struct Span<'h> {
    name: &'static str,
    histogram: Option<&'h Histogram>,
    start: Instant,
}

impl<'h> Span<'h> {
    /// Starts timing the named stage.
    #[must_use]
    pub fn start(name: &'static str, histogram: Option<&'h Histogram>) -> Self {
        Span {
            name,
            histogram,
            start: Instant::now(),
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let end = Instant::now();
        if let Some(h) = self.histogram {
            h.record(
                u64::try_from(end.saturating_duration_since(self.start).as_nanos())
                    .unwrap_or(u64::MAX),
            );
        }
        record_stage(self.name, self.start, end);
    }
}

/// Times a named stage until the end of the enclosing scope:
/// `span!("name")` records into the active trace only,
/// `span!("name", &histogram)` also records into the histogram. Bind it
/// (`let _timed = span!(...)`) — an unbound span drops immediately.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::Span::start($name, None)
    };
    ($name:expr, $histogram:expr) => {
        $crate::trace::Span::start($name, Some($histogram))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_outside_a_trace_are_silent() {
        assert!(!is_active());
        let _s = span!("quiet");
        drop(_s);
        assert!(!is_active());
    }

    #[test]
    fn a_trace_collects_stages_in_completion_order() {
        let guard = begin(16).unwrap();
        assert!(is_active());
        {
            let _outer = span!("outer");
            let _inner = span!("inner");
        }
        let report = guard.finish();
        assert!(!is_active());
        assert_eq!(report.dropped, 0);
        let names: Vec<&str> = report.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(names, ["inner", "outer"], "inner drops first");
        // The outer stage starts no later than the inner and spans it.
        assert!(report.stages[1].start_ns <= report.stages[0].start_ns);
        assert!(report.stages[1].duration_ns >= report.stages[0].duration_ns);
    }

    #[test]
    fn nested_begin_is_refused() {
        let guard = begin(4).unwrap();
        assert!(begin(4).is_none());
        let _ = guard.finish();
        assert!(begin(4).is_some());
    }

    #[test]
    fn capacity_overflow_is_counted_not_stored() {
        let guard = begin(2).unwrap();
        for _ in 0..5 {
            let _s = span!("stage");
        }
        let report = guard.finish();
        assert_eq!(report.stages.len(), 2);
        assert_eq!(report.dropped, 3);
    }

    #[test]
    fn dropping_the_guard_clears_the_trace() {
        let guard = begin(4).unwrap();
        drop(guard);
        assert!(!is_active());
    }

    #[test]
    fn spans_feed_their_histogram_with_and_without_a_trace() {
        let h = Histogram::new();
        {
            let _s = span!("timed", &h);
        }
        let guard = begin(4).unwrap();
        {
            let _s = span!("timed", &h);
        }
        let report = guard.finish();
        assert_eq!(h.snapshot().count(), 2);
        assert_eq!(report.stages.len(), 1);
    }

    #[test]
    fn reports_round_trip_through_serde() {
        let report = TraceReport {
            stages: vec![TraceStage {
                stage: "fcm.train".to_string(),
                start_ns: 10,
                duration_ns: 250,
            }],
            dropped: 1,
        };
        let json = serde_json::to_string(&report).unwrap();
        let back: TraceReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
