//! Property tests for histogram correctness: exact bucket counts under
//! concurrent recording, associative merges, and quantile readouts that
//! bracket a reference sorted-vec computation.

use grouptravel_obs::metrics::{bucket_index, bucket_lower_bound, bucket_upper_bound, NUM_BUCKETS};
use grouptravel_obs::{Histogram, HistogramSnapshot, LatencySummary};
use proptest::prelude::*;
use std::sync::Arc;

/// A value mix spanning the exact region, mid-range, and the far tail.
fn value_strategy() -> impl Strategy<Value = u64> {
    any::<u64>().prop_map(|raw| match raw % 4 {
        0 => raw % 16,             // exact region
        1 => raw % 100_000,        // µs-scale latencies
        2 => raw % 10_000_000_000, // up to 10s in ns
        _ => raw,                  // anywhere in u64
    })
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #[test]
    fn bucket_counts_are_exact(values in proptest::collection::vec(value_strategy(), 0..400)) {
        let snap = snapshot_of(&values);
        prop_assert_eq!(snap.count(), values.len() as u64);
        prop_assert_eq!(snap.sum(), values.iter().copied().fold(0u64, u64::wrapping_add));
        prop_assert_eq!(snap.max(), values.iter().copied().max().unwrap_or(0));
        // Every value landed in exactly the bucket the index function names.
        let mut expected = vec![0u64; NUM_BUCKETS];
        for &v in &values {
            let i = bucket_index(v);
            prop_assert!(bucket_lower_bound(i) <= v && v <= bucket_upper_bound(i));
            expected[i] += 1;
        }
        prop_assert_eq!(snap.buckets(), &expected[..]);
    }

    #[test]
    fn merges_are_associative_and_commutative(
        a in proptest::collection::vec(value_strategy(), 0..120),
        b in proptest::collection::vec(value_strategy(), 0..120),
        c in proptest::collection::vec(value_strategy(), 0..120),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        // (a ⊕ b) ⊕ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ⊕ (b ⊕ c)
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // b ⊕ a == a ⊕ b
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        // And the merge equals recording everything into one histogram.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &snapshot_of(&all));
    }

    #[test]
    fn quantiles_bracket_the_sorted_vec_reference(
        values in proptest::collection::vec(value_strategy(), 1..400),
        qsel in 0usize..5,
    ) {
        let q = [0.5, 0.9, 0.99, 0.999, 1.0][qsel];
        let snap = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        // The same nearest-rank definition the histogram uses.
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let reference = sorted[rank - 1];
        let (lo, hi) = snap.quantile_bounds(q);
        prop_assert!(
            lo <= reference && reference <= hi,
            "reference {} outside [{}, {}] at q={}", reference, lo, hi, q
        );
        // The point estimate is the (conservative) upper bound.
        prop_assert_eq!(snap.quantile(q), hi);
    }

    #[test]
    fn summaries_bracket_the_exact_summary(
        values in proptest::collection::vec(value_strategy(), 1..400),
    ) {
        let snap = snapshot_of(&values);
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let exact = LatencySummary::from_sorted_ns(&sorted);
        let approx = snap.summary();
        prop_assert_eq!(approx.count, exact.count);
        prop_assert_eq!(approx.max_ns, exact.max_ns);
        // Histogram quantiles never under-report the exact ones.
        prop_assert!(approx.p50_ns >= exact.p50_ns);
        prop_assert!(approx.p90_ns >= exact.p90_ns);
        prop_assert!(approx.p99_ns >= exact.p99_ns);
        prop_assert!(approx.p999_ns >= exact.p999_ns);
    }
}

/// Exactness under true concurrency: every recorded value is in the final
/// buckets, none duplicated, with recorders hammering from many threads.
#[test]
fn bucket_counts_are_exact_under_concurrent_recording() {
    let hist = Arc::new(Histogram::new());
    let threads = 8;
    let per_thread = 5_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    // A deterministic spread: exact region, mid, tail.
                    let v = match i % 3 {
                        0 => i % 16,
                        1 => i * 1_000 + t,
                        _ => (i << 20) | t,
                    };
                    hist.record(v);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let snap = hist.snapshot();
    assert_eq!(snap.count(), threads * per_thread);

    // Rebuild the expected buckets serially and compare exactly.
    let mut expected = vec![0u64; NUM_BUCKETS];
    let mut expected_sum = 0u64;
    let mut expected_max = 0u64;
    for t in 0..threads {
        for i in 0..per_thread {
            let v = match i % 3 {
                0 => i % 16,
                1 => i * 1_000 + t,
                _ => (i << 20) | t,
            };
            expected[bucket_index(v)] += 1;
            expected_sum += v;
            expected_max = expected_max.max(v);
        }
    }
    assert_eq!(snap.buckets(), &expected[..]);
    assert_eq!(snap.sum(), expected_sum);
    assert_eq!(snap.max(), expected_max);
}
