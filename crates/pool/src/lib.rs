//! Shared scoped worker pool for deterministic fan-out.
//!
//! One `WorkerPool` instance is shared between request fan-out
//! (`Engine::serve_batch`, `serve_command_batch`) and model training
//! (parallel FCM sweeps, block-Gibbs LDA) so the two never oversubscribe
//! the machine: the pool owns a fixed set of worker threads and every
//! parallel region borrows them through a [`WorkerPool::scope`].
//!
//! # Scheduling model
//!
//! The pool keeps a single FIFO queue of type-erased jobs. A scope
//! spawns jobs into that queue and then **helps**: while its own jobs
//! are outstanding, the scope owner pops and executes queued jobs
//! itself (counted as *steals* in the metrics) instead of blocking.
//! This makes the pool deadlock-free under nesting — a worker that
//! opens a nested scope drains the queue it is waiting on — and means
//! a zero- or one-worker pool still completes every scope: the caller
//! simply runs everything inline.
//!
//! # Determinism
//!
//! The pool itself guarantees only completion, not order. Deterministic
//! results are the *callers'* contract: parallel FCM and block-Gibbs
//! LDA spawn tasks over a fixed chunk grid, give every task its own
//! output slot or derived RNG seed, and reduce in fixed chunk order —
//! so the result is a pure function of the input and the chunk grid,
//! never of which thread ran which chunk first.
//!
//! # Panics
//!
//! A panic inside a spawned task is caught, the scope still waits for
//! every sibling task (the scoped borrows stay alive until all tasks
//! finished), and the first panic payload is re-raised from
//! [`WorkerPool::scope`] on the caller's thread.

use grouptravel_obs::{Counter, Gauge};
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// What a scope's tasks are doing — the `kind` label of
/// `gt_pool_tasks_total`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// Per-chunk package builds from `Engine::serve_batch`.
    Serve,
    /// Per-lane session command batches from `serve_command_batch`.
    Command,
    /// Chunked FCM membership+centroid sweeps.
    FcmTrain,
    /// Block-Gibbs LDA document blocks and count merges.
    LdaTrain,
    /// Anything else (tests, ad-hoc callers).
    Other,
}

impl TaskKind {
    /// Every kind, in label order.
    pub const ALL: [TaskKind; 5] = [
        TaskKind::Serve,
        TaskKind::Command,
        TaskKind::FcmTrain,
        TaskKind::LdaTrain,
        TaskKind::Other,
    ];
    /// Number of kinds (length of [`TaskKind::ALL`]).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable metric label for the kind.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            TaskKind::Serve => "serve",
            TaskKind::Command => "command",
            TaskKind::FcmTrain => "fcm_train",
            TaskKind::LdaTrain => "lda_train",
            TaskKind::Other => "other",
        }
    }

    fn index(self) -> usize {
        match self {
            TaskKind::Serve => 0,
            TaskKind::Command => 1,
            TaskKind::FcmTrain => 2,
            TaskKind::LdaTrain => 3,
            TaskKind::Other => 4,
        }
    }
}

/// Metric handles the owning process registers once (see
/// `engine::observe`); the pool keeps its own atomic counters either way
/// so [`WorkerPool::stats`] works without a registry.
pub struct PoolMetrics {
    /// `gt_pool_queue_depth` — jobs queued and not yet picked up.
    pub queue_depth: Arc<Gauge>,
    /// `gt_pool_tasks_total{kind=...}` — spawned tasks, indexed by
    /// [`TaskKind::index`] in [`TaskKind::ALL`] order.
    pub tasks: [Arc<Counter>; TaskKind::COUNT],
    /// `gt_pool_steals_total` — tasks executed by a scope owner while
    /// helping instead of by a pool worker.
    pub steals: Arc<Counter>,
}

/// Point-in-time pool counters, metric-registry independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Fixed worker-thread count (≥ 1).
    pub threads: usize,
    /// Tasks spawned over the pool's lifetime.
    pub tasks: u64,
    /// Tasks executed inline by helping scope owners.
    pub steals: u64,
    /// Jobs currently queued.
    pub queue_depth: u64,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
    shutdown: AtomicBool,
    tasks_total: AtomicU64,
    steals_total: AtomicU64,
    metrics: OnceLock<PoolMetrics>,
}

impl PoolShared {
    fn push(&self, job: Job) {
        let mut queue = self.queue.lock().expect("pool queue poisoned");
        queue.push_back(job);
        if let Some(metrics) = self.metrics.get() {
            metrics.queue_depth.add(1);
        }
        drop(queue);
        self.job_ready.notify_one();
    }

    /// Pops one job; never blocks.
    fn try_pop(&self) -> Option<Job> {
        let mut queue = self.queue.lock().expect("pool queue poisoned");
        let job = queue.pop_front();
        if job.is_some() {
            if let Some(metrics) = self.metrics.get() {
                metrics.queue_depth.add(-1);
            }
        }
        job
    }

    fn count_spawn(&self, kind: TaskKind) {
        self.tasks_total.fetch_add(1, Ordering::Relaxed);
        if let Some(metrics) = self.metrics.get() {
            metrics.tasks[kind.index()].inc();
        }
    }

    fn count_steal(&self) {
        self.steals_total.fetch_add(1, Ordering::Relaxed);
        if let Some(metrics) = self.metrics.get() {
            metrics.steals.inc();
        }
    }
}

struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl ScopeState {
    fn new() -> Self {
        ScopeState {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn task_started(&self) {
        let mut pending = self.pending.lock().expect("scope pending poisoned");
        *pending += 1;
    }

    fn task_finished(&self) {
        let mut pending = self.pending.lock().expect("scope pending poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn store_panic(&self, payload: Box<dyn std::any::Any + Send + 'static>) {
        let mut slot = self.panic.lock().expect("scope panic slot poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
    }
}

/// A fixed pool of worker threads executing scoped tasks.
///
/// Dropping the pool shuts the workers down after the queue drains;
/// scopes must not outlive the pool (they borrow it, so the compiler
/// enforces this).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

impl WorkerPool {
    /// Creates a pool with `threads` workers; `0` clamps to `1` so a
    /// misconfigured budget degrades to sequential execution instead of
    /// hanging.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            job_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            tasks_total: AtomicU64::new(0),
            steals_total: AtomicU64::new(0),
            metrics: OnceLock::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gt-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            workers,
            threads,
        }
    }

    /// The fixed worker count (≥ 1).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Attaches registry-backed metric handles. First call wins; later
    /// calls are ignored (the pool is shared, the registry is one).
    pub fn attach_metrics(&self, metrics: PoolMetrics) {
        let _ = self.shared.metrics.set(metrics);
    }

    /// Lifetime counters, independent of any metrics registry.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        let queue_depth = self.shared.queue.lock().expect("pool queue poisoned").len() as u64;
        PoolStats {
            threads: self.threads,
            tasks: self.shared.tasks_total.load(Ordering::Relaxed),
            steals: self.shared.steals_total.load(Ordering::Relaxed),
            queue_depth,
        }
    }

    /// Runs `f` with a scope handle; returns once every task spawned in
    /// the scope has finished. Tasks may borrow from the caller's stack
    /// (`'env`). Panics from the body or any task are re-raised here,
    /// after the completion barrier.
    pub fn scope<'env, R>(&self, kind: TaskKind, f: impl FnOnce(&PoolScope<'_, 'env>) -> R) -> R {
        let state = Arc::new(ScopeState::new());
        let scope = PoolScope {
            pool: self,
            state: Arc::clone(&state),
            kind,
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // The barrier below is what makes the lifetime transmute in
        // `spawn` sound: no matter how we got here, every spawned task
        // has run to completion before any `'env` borrow can die.
        self.drain(&state);
        if let Some(payload) = state
            .panic
            .lock()
            .expect("scope panic slot poisoned")
            .take()
        {
            resume_unwind(payload);
        }
        match result {
            Ok(value) => value,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Caller-helps barrier: execute queued jobs (ours or anyone's)
    /// until this scope's pending count reaches zero.
    fn drain(&self, state: &ScopeState) {
        loop {
            {
                let pending = state.pending.lock().expect("scope pending poisoned");
                if *pending == 0 {
                    return;
                }
            }
            if let Some(job) = self.shared.try_pop() {
                self.shared.count_steal();
                job();
                continue;
            }
            // Queue empty but tasks still in flight on workers. Wait on
            // the scope's condvar with a short timeout: a task running
            // elsewhere may open a nested scope and enqueue fresh jobs
            // that only we are free to execute.
            let mut pending = state.pending.lock().expect("scope pending poisoned");
            while *pending > 0 {
                let (guard, timeout) = state
                    .done
                    .wait_timeout(pending, Duration::from_millis(1))
                    .expect("scope pending poisoned");
                pending = guard;
                if timeout.timed_out() {
                    break;
                }
            }
            if *pending == 0 {
                return;
            }
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.job_ready.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    if let Some(metrics) = shared.metrics.get() {
                        metrics.queue_depth.add(-1);
                    }
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                queue = shared.job_ready.wait(queue).expect("pool queue poisoned");
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

/// Spawn handle passed to the closure of [`WorkerPool::scope`].
pub struct PoolScope<'pool, 'env> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    kind: TaskKind,
    // Invariant over 'env, same as `std::thread::Scope`: the scope must
    // not be coercible to a shorter environment lifetime.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'pool, 'env> PoolScope<'pool, 'env> {
    /// Spawns a task onto the shared queue. The task may borrow `'env`
    /// data; the owning [`WorkerPool::scope`] call does not return until
    /// the task has run (or its panic has been captured).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.state.task_started();
        self.pool.shared.count_spawn(self.kind);
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            if let Err(payload) = result {
                state.store_panic(payload);
            }
            state.task_finished();
        });
        // SAFETY: the job borrows `'env` data, but `WorkerPool::scope`
        // blocks in `drain` until this job's `task_finished` has run —
        // even when the scope body or a sibling task panics — so the
        // borrow is live for the job's whole execution. The erased
        // lifetime is never observable past that barrier.
        let job: Job = unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job) };
        self.pool.shared.push(job);
    }

    /// The kind this scope was opened with.
    #[must_use]
    pub fn kind(&self) -> TaskKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn zero_workers_clamp_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.threads(), 1);
        let mut out = vec![0u64; 8];
        pool.scope(TaskKind::Other, |s| {
            for (i, slot) in out.iter_mut().enumerate() {
                s.spawn(move || *slot = i as u64 + 1);
            }
        });
        assert_eq!(out, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn scope_borrows_stack_data() {
        let pool = WorkerPool::new(4);
        let inputs: Vec<u64> = (0..1000).collect();
        let mut outputs = vec![0u64; 1000];
        pool.scope(TaskKind::Other, |s| {
            for (input, output) in inputs.chunks(64).zip(outputs.chunks_mut(64)) {
                s.spawn(move || {
                    for (i, o) in input.iter().zip(output.iter_mut()) {
                        *o = i * 2;
                    }
                });
            }
        });
        for (i, o) in inputs.iter().zip(&outputs) {
            assert_eq!(*o, i * 2);
        }
    }

    #[test]
    fn scope_returns_value() {
        let pool = WorkerPool::new(2);
        let value = pool.scope(TaskKind::Other, |_| 42);
        assert_eq!(value, 42);
    }

    #[test]
    fn stats_count_tasks() {
        let pool = WorkerPool::new(2);
        pool.scope(TaskKind::FcmTrain, |s| {
            for _ in 0..10 {
                s.spawn(|| {});
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.tasks, 10);
        assert_eq!(stats.queue_depth, 0);
        assert_eq!(stats.threads, 2);
    }

    #[test]
    fn sequential_scopes_reuse_workers() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        for _ in 0..50 {
            pool.scope(TaskKind::Other, |s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        counter.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }
        assert_eq!(counter.load(Ordering::Relaxed), 200);
    }
}
