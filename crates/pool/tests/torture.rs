//! Pool torture: nested scopes, panic-in-task, zero-worker clamp,
//! concurrent scopes from many threads, and deep nesting on a pool
//! narrower than the nesting depth (the caller-helps scheduler must not
//! deadlock when every worker is itself blocked in a scope barrier).

use grouptravel_pool::{TaskKind, WorkerPool};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn nested_scopes_complete() {
    let pool = WorkerPool::new(2);
    let counter = AtomicUsize::new(0);
    pool.scope(TaskKind::Other, |outer| {
        for _ in 0..4 {
            outer.spawn(|| {
                pool.scope(TaskKind::Other, |inner| {
                    for _ in 0..4 {
                        inner.spawn(|| {
                            counter.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            });
        }
    });
    assert_eq!(counter.load(Ordering::Relaxed), 16);
}

#[test]
fn nesting_deeper_than_worker_count() {
    // Depth-5 nesting on a 1-worker pool: the single worker and the
    // caller both end up blocked in scope barriers and must make
    // progress by draining the shared queue themselves.
    let pool = WorkerPool::new(1);
    let counter = AtomicUsize::new(0);

    fn recurse(pool: &WorkerPool, counter: &AtomicUsize, depth: usize) {
        if depth == 0 {
            counter.fetch_add(1, Ordering::Relaxed);
            return;
        }
        pool.scope(TaskKind::Other, |s| {
            for _ in 0..2 {
                s.spawn(move || recurse(pool, counter, depth - 1));
            }
        });
    }

    recurse(&pool, &counter, 5);
    assert_eq!(counter.load(Ordering::Relaxed), 32);
}

#[test]
fn panic_in_task_propagates_after_barrier() {
    let pool = WorkerPool::new(2);
    let completed = Arc::new(AtomicUsize::new(0));
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(TaskKind::Other, |s| {
            s.spawn(|| panic!("task exploded"));
            for _ in 0..8 {
                let completed = Arc::clone(&completed);
                s.spawn(move || {
                    completed.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
    }));
    let payload = result.expect_err("scope must re-raise the task panic");
    let message = payload
        .downcast_ref::<&str>()
        .copied()
        .expect("panic payload is the task's message");
    assert_eq!(message, "task exploded");
    // The barrier held: every sibling ran even though one task panicked.
    assert_eq!(completed.load(Ordering::Relaxed), 8);

    // The pool survives the panic and serves later scopes.
    let mut value = 0u32;
    pool.scope(TaskKind::Other, |s| {
        s.spawn(|| value = 7);
    });
    assert_eq!(value, 7);
}

#[test]
fn panic_in_scope_body_still_waits_for_tasks() {
    let pool = WorkerPool::new(2);
    let completed = Arc::new(AtomicUsize::new(0));
    let result = catch_unwind(AssertUnwindSafe(|| {
        pool.scope(TaskKind::Other, |s| {
            for _ in 0..8 {
                let completed = Arc::clone(&completed);
                s.spawn(move || {
                    completed.fetch_add(1, Ordering::Relaxed);
                });
            }
            panic!("body exploded");
        });
    }));
    assert!(result.is_err());
    assert_eq!(completed.load(Ordering::Relaxed), 8);
}

#[test]
fn zero_worker_pool_runs_scopes_inline() {
    let pool = WorkerPool::new(0);
    assert_eq!(pool.threads(), 1);
    let counter = AtomicUsize::new(0);
    pool.scope(TaskKind::Other, |s| {
        for _ in 0..64 {
            s.spawn(|| {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(counter.load(Ordering::Relaxed), 64);
    // Steals + worker executions must account for every task.
    let stats = pool.stats();
    assert_eq!(stats.tasks, 64);
    assert_eq!(stats.queue_depth, 0);
}

#[test]
fn concurrent_scopes_from_many_threads() {
    let pool = Arc::new(WorkerPool::new(3));
    let counter = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|outer| {
        for _ in 0..8 {
            let pool = Arc::clone(&pool);
            let counter = Arc::clone(&counter);
            outer.spawn(move || {
                for _ in 0..20 {
                    pool.scope(TaskKind::Other, |s| {
                        for _ in 0..4 {
                            let counter = Arc::clone(&counter);
                            s.spawn(move || {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            });
        }
    });
    assert_eq!(counter.load(Ordering::Relaxed), 8 * 20 * 4);
    assert_eq!(pool.stats().tasks, 8 * 20 * 4);
}

#[test]
fn heavy_fanout_keeps_order_by_slot() {
    // 10k tasks writing disjoint slots: completion order is arbitrary,
    // slot contents must not be.
    let pool = WorkerPool::new(4);
    let mut slots = vec![0u32; 10_000];
    pool.scope(TaskKind::Other, |s| {
        for (i, chunk) in slots.chunks_mut(97).enumerate() {
            s.spawn(move || {
                for (j, slot) in chunk.iter_mut().enumerate() {
                    *slot = (i * 97 + j) as u32;
                }
            });
        }
    });
    for (i, slot) in slots.iter().enumerate() {
        assert_eq!(*slot, i as u32);
    }
}
