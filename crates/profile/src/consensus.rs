//! Group consensus functions.
//!
//! §2.3 of the paper: the group score for the j-th POI type is
//! `g_j = w1 · p_j + w2 · (1 − d_j)` where `p_j` is a group *preference*
//! (average or least misery over members), `d_j` a group *disagreement*
//! (average pair-wise difference or variance), and `w1 + w2 = 1`.
//!
//! The experiments (§4.1) use four named variants:
//!
//! | name | preference | disagreement | w1 |
//! |---|---|---|---|
//! | average preference | average | — | 1.0 |
//! | least misery | least misery | — | 1.0 |
//! | pair-wise disagreement | average | average pair-wise | 0.5 |
//! | disagreement variance | average | variance | 0.5 |

use serde::{Deserialize, Serialize};
use std::fmt;

/// How to aggregate individual preferences into a group preference `p_j`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PreferenceFunction {
    /// `p_j = (1/|G|) Σ_u u_j`
    Average,
    /// `p_j = min_u u_j`
    LeastMisery,
}

impl PreferenceFunction {
    /// Computes the group preference over members' scores for one POI type.
    /// Returns 0 for an empty group.
    #[must_use]
    pub fn aggregate(&self, scores: &[f64]) -> f64 {
        if scores.is_empty() {
            return 0.0;
        }
        match self {
            PreferenceFunction::Average => scores.iter().sum::<f64>() / scores.len() as f64,
            PreferenceFunction::LeastMisery => scores.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }
}

/// How to measure the disagreement `d_j` among members for one POI type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DisagreementFunction {
    /// `d_j = 2/(|G|(|G|−1)) Σ_{u<v} |u_j − v_j|`
    AveragePairwise,
    /// `d_j = (1/|G|) Σ_u (u_j − μ_j)²`
    Variance,
}

impl DisagreementFunction {
    /// Computes the disagreement over members' scores for one POI type.
    /// Groups with fewer than two members have zero disagreement.
    #[must_use]
    pub fn aggregate(&self, scores: &[f64]) -> f64 {
        let n = scores.len();
        if n < 2 {
            return 0.0;
        }
        match self {
            DisagreementFunction::AveragePairwise => {
                let mut total = 0.0;
                for (i, &a) in scores.iter().enumerate() {
                    for &b in &scores[i + 1..] {
                        total += (a - b).abs();
                    }
                }
                2.0 * total / (n as f64 * (n as f64 - 1.0))
            }
            DisagreementFunction::Variance => {
                let mean = scores.iter().sum::<f64>() / n as f64;
                scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64
            }
        }
    }
}

/// A fully specified consensus function.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConsensusMethod {
    /// The preference aggregation.
    pub preference: PreferenceFunction,
    /// The disagreement component, if any.
    pub disagreement: Option<DisagreementFunction>,
    /// Weight `w1` of the preference component; `w2 = 1 − w1` weighs the
    /// `(1 − d_j)` term.
    pub preference_weight: f64,
}

impl ConsensusMethod {
    /// "Average preference": mean preference only (`w1 = 1`).
    #[must_use]
    pub fn average_preference() -> Self {
        Self {
            preference: PreferenceFunction::Average,
            disagreement: None,
            preference_weight: 1.0,
        }
    }

    /// "Least misery": minimum preference only (`w1 = 1`).
    #[must_use]
    pub fn least_misery() -> Self {
        Self {
            preference: PreferenceFunction::LeastMisery,
            disagreement: None,
            preference_weight: 1.0,
        }
    }

    /// "Pair-wise disagreement": average preference + average pair-wise
    /// disagreement, `w1 = 0.5`.
    #[must_use]
    pub fn pairwise_disagreement() -> Self {
        Self {
            preference: PreferenceFunction::Average,
            disagreement: Some(DisagreementFunction::AveragePairwise),
            preference_weight: 0.5,
        }
    }

    /// "Disagreement variance": average preference + variance disagreement,
    /// `w1 = 0.5`.
    #[must_use]
    pub fn disagreement_variance() -> Self {
        Self {
            preference: PreferenceFunction::Average,
            disagreement: Some(DisagreementFunction::Variance),
            preference_weight: 0.5,
        }
    }

    /// A custom consensus with an explicit `w1` (clamped to `[0, 1]`).
    #[must_use]
    pub fn custom(
        preference: PreferenceFunction,
        disagreement: Option<DisagreementFunction>,
        preference_weight: f64,
    ) -> Self {
        Self {
            preference,
            disagreement,
            preference_weight: preference_weight.clamp(0.0, 1.0),
        }
    }

    /// The four variants evaluated in the paper, in the order its tables list
    /// them.
    #[must_use]
    pub fn paper_variants() -> [Self; 4] {
        [
            Self::average_preference(),
            Self::least_misery(),
            Self::pairwise_disagreement(),
            Self::disagreement_variance(),
        ]
    }

    /// Short display name matching the paper's tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match (self.preference, self.disagreement) {
            (PreferenceFunction::Average, None) => "average preference",
            (PreferenceFunction::LeastMisery, None) => "least misery",
            (PreferenceFunction::Average, Some(DisagreementFunction::AveragePairwise)) => {
                "pair-wise disagreement"
            }
            (PreferenceFunction::Average, Some(DisagreementFunction::Variance)) => {
                "disagreement variance"
            }
            (PreferenceFunction::LeastMisery, Some(DisagreementFunction::AveragePairwise)) => {
                "least misery + pair-wise disagreement"
            }
            (PreferenceFunction::LeastMisery, Some(DisagreementFunction::Variance)) => {
                "least misery + disagreement variance"
            }
        }
    }

    /// The group consensus score `g_j` for one POI type given all members'
    /// scores for it, clamped to `[0, 1]`.
    ///
    /// When no disagreement function is configured the paper's definition
    /// degenerates to `g_j = w1 · p_j` with `w1 = 1`, i.e. the plain
    /// aggregated preference.
    #[must_use]
    pub fn score(&self, member_scores: &[f64]) -> f64 {
        let p = self.preference.aggregate(member_scores);
        let w1 = self.preference_weight;
        let value = match self.disagreement {
            None => {
                if (w1 - 1.0).abs() < f64::EPSILON {
                    p
                } else {
                    // Without a disagreement term the remaining weight would
                    // reward nothing; treat it as agreement-neutral.
                    w1 * p + (1.0 - w1)
                }
            }
            Some(d) => {
                let dis = d.aggregate(member_scores);
                w1 * p + (1.0 - w1) * (1.0 - dis)
            }
        };
        value.clamp(0.0, 1.0)
    }

    /// Aggregates a whole category: `member_vectors[u][j]` is user `u`'s
    /// score for type `j`. All members must share the same dimensionality;
    /// the result has the same length as the first member's vector (missing
    /// components in other members are treated as 0).
    #[must_use]
    pub fn aggregate_vectors(&self, member_vectors: &[&[f64]]) -> Vec<f64> {
        let Some(first) = member_vectors.first() else {
            return Vec::new();
        };
        let dim = first.len();
        (0..dim)
            .map(|j| {
                let scores: Vec<f64> = member_vectors
                    .iter()
                    .map(|v| v.get(j).copied().unwrap_or(0.0))
                    .collect();
                self.score(&scores)
            })
            .collect()
    }
}

impl fmt::Display for ConsensusMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The family example of §2.3: preferences 0.8, 1.0, 0.6, 0.2 for
    /// museums.
    const FAMILY: [f64; 4] = [0.8, 1.0, 0.6, 0.2];

    #[test]
    fn average_preference_matches_the_paper_example() {
        let p = PreferenceFunction::Average.aggregate(&FAMILY);
        assert!((p - 0.65).abs() < 1e-12);
    }

    #[test]
    fn least_misery_matches_the_paper_example() {
        let p = PreferenceFunction::LeastMisery.aggregate(&FAMILY);
        assert!((p - 0.2).abs() < 1e-12);
    }

    #[test]
    fn pairwise_disagreement_matches_the_paper_example() {
        let d = DisagreementFunction::AveragePairwise.aggregate(&FAMILY);
        // Pairwise diffs: |0.8-1.0| + |0.8-0.6| + |0.8-0.2| + |1.0-0.6| +
        // |1.0-0.2| + |0.6-0.2| = 0.2+0.2+0.6+0.4+0.8+0.4 = 2.6; × 2/(4·3) = 0.4333…
        assert!((d - 2.6 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn variance_disagreement_matches_the_paper_example() {
        let d = DisagreementFunction::Variance.aggregate(&FAMILY);
        assert!((d - 0.0875).abs() < 1e-9);
    }

    #[test]
    fn consensus_score_matches_the_paper_example() {
        // g = 0.5 · 0.65 + 0.5 · (1 − 0.4333) ≈ 0.61 as reported in §2.3.
        let g = ConsensusMethod::pairwise_disagreement().score(&FAMILY);
        assert!((g - 0.6083333).abs() < 1e-6, "g = {g}");
        assert!((g - 0.61).abs() < 0.01);
    }

    #[test]
    fn least_misery_is_never_above_average() {
        for scores in [&FAMILY[..], &[0.3, 0.3, 0.3], &[0.0, 1.0]] {
            let avg = PreferenceFunction::Average.aggregate(scores);
            let lm = PreferenceFunction::LeastMisery.aggregate(scores);
            assert!(lm <= avg + 1e-12);
        }
    }

    #[test]
    fn disagreement_of_identical_scores_is_zero() {
        for f in [
            DisagreementFunction::AveragePairwise,
            DisagreementFunction::Variance,
        ] {
            assert!(f.aggregate(&[0.4, 0.4, 0.4]).abs() < 1e-12);
            assert_eq!(f.aggregate(&[0.4]), 0.0);
            assert_eq!(f.aggregate(&[]), 0.0);
        }
    }

    #[test]
    fn empty_group_has_zero_preference() {
        assert_eq!(PreferenceFunction::Average.aggregate(&[]), 0.0);
        assert_eq!(PreferenceFunction::LeastMisery.aggregate(&[]), 0.0);
    }

    #[test]
    fn higher_agreement_scores_higher_all_else_equal() {
        // Same average (0.5), different spread: the disagreement-aware
        // consensus must prefer the agreeing group.
        let agreeing = [0.5, 0.5, 0.5, 0.5];
        let disagreeing = [1.0, 0.0, 1.0, 0.0];
        for method in [
            ConsensusMethod::pairwise_disagreement(),
            ConsensusMethod::disagreement_variance(),
        ] {
            assert!(method.score(&agreeing) > method.score(&disagreeing));
        }
    }

    #[test]
    fn paper_variants_have_expected_names() {
        let names: Vec<&str> = ConsensusMethod::paper_variants()
            .iter()
            .map(ConsensusMethod::name)
            .collect();
        assert_eq!(
            names,
            vec![
                "average preference",
                "least misery",
                "pair-wise disagreement",
                "disagreement variance"
            ]
        );
    }

    #[test]
    fn custom_clamps_the_weight() {
        let m = ConsensusMethod::custom(PreferenceFunction::Average, None, 7.0);
        assert_eq!(m.preference_weight, 1.0);
        let m = ConsensusMethod::custom(PreferenceFunction::Average, None, -3.0);
        assert_eq!(m.preference_weight, 0.0);
    }

    #[test]
    fn scores_stay_in_unit_interval() {
        for method in ConsensusMethod::paper_variants() {
            for scores in [&[0.0, 1.0][..], &[1.0, 1.0, 1.0], &[0.0], &[0.25, 0.75]] {
                let g = method.score(scores);
                assert!((0.0..=1.0).contains(&g), "{method}: {g}");
            }
        }
    }

    #[test]
    fn aggregate_vectors_applies_per_dimension() {
        let u1 = vec![1.0, 0.0];
        let u2 = vec![0.0, 1.0];
        let g = ConsensusMethod::average_preference().aggregate_vectors(&[&u1, &u2]);
        assert_eq!(g, vec![0.5, 0.5]);
        let lm = ConsensusMethod::least_misery().aggregate_vectors(&[&u1, &u2]);
        assert_eq!(lm, vec![0.0, 0.0]);
        assert!(ConsensusMethod::average_preference()
            .aggregate_vectors(&[])
            .is_empty());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(
            ConsensusMethod::disagreement_variance().to_string(),
            "disagreement variance"
        );
    }
}
