//! Travel groups, group profiles, uniformity and the median user.

use crate::consensus::ConsensusMethod;
use crate::schema::ProfileSchema;
use crate::user::UserProfile;
use crate::vector::cosine_similarity;
use grouptravel_dataset::Category;
use grouptravel_geo::DenseMatrix;
use serde::{Deserialize, Serialize};

/// A group of travelers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Group {
    /// Group identifier (index in the synthetic experiment).
    pub group_id: u64,
    members: Vec<UserProfile>,
}

impl Group {
    /// Creates a group from member profiles (at least one member expected by
    /// callers; empty groups are permitted but produce empty profiles).
    #[must_use]
    pub fn new(group_id: u64, members: Vec<UserProfile>) -> Self {
        Self { group_id, members }
    }

    /// The member profiles.
    #[must_use]
    pub fn members(&self) -> &[UserProfile] {
        &self.members
    }

    /// Mutable access to member profiles (used by the individual refinement
    /// strategy, which rewrites each member's profile before re-aggregating).
    #[must_use]
    pub fn members_mut(&mut self) -> &mut [UserProfile] {
        &mut self.members
    }

    /// Number of members.
    #[must_use]
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// The schema shared by the members (taken from the first member).
    #[must_use]
    pub fn schema(&self) -> Option<ProfileSchema> {
        self.members.first().map(UserProfile::schema)
    }

    /// Group uniformity (§4.1): the average pair-wise cosine similarity
    /// between member profiles. Groups of fewer than two members are
    /// maximally uniform (1.0).
    #[must_use]
    pub fn uniformity(&self) -> f64 {
        let n = self.members.len();
        if n < 2 {
            return 1.0;
        }
        let (concatenated, lengths) = self.member_matrix();
        let mut total = 0.0;
        let mut pairs = 0usize;
        for i in 0..n {
            for j in i + 1..n {
                // cosine_similarity's length-mismatch guard, preserved
                // across the fixed-stride rows: members whose whole-profile
                // lengths differ contribute 0 similarity, exactly as the
                // per-member `Vec` comparison did.
                if lengths[i] == lengths[j] {
                    total += cosine_similarity(concatenated.row(i), concatenated.row(j));
                }
                pairs += 1;
            }
        }
        total / pairs as f64
    }

    /// All member profiles concatenated into one flat matrix — the
    /// whole-profile comparisons (uniformity, median user) read member rows
    /// out of a single contiguous buffer instead of one heap `Vec` per
    /// member. The stride is the largest member's *actual* concatenated
    /// length (not the schema's, which deserialized profiles are not
    /// forced to honour), so no member is ever truncated; shorter members
    /// are zero-padded (padding never changes a cosine: it adds nothing to
    /// dot products or norms). The second return value holds each member's
    /// true concatenated length, which the callers use to reproduce
    /// `cosine_similarity`'s length-mismatch guard.
    fn member_matrix(&self) -> (DenseMatrix, Vec<usize>) {
        let dim = self
            .members
            .iter()
            .map(UserProfile::concatenated_len)
            .max()
            .unwrap_or(0);
        let mut matrix = DenseMatrix::zeros(self.members.len(), dim);
        let lengths = self
            .members
            .iter()
            .enumerate()
            .map(|(i, member)| member.concat_into(matrix.row_mut(i)))
            .collect();
        (matrix, lengths)
    }

    /// Aggregates the members into a group profile using `method`.
    #[must_use]
    pub fn profile(&self, method: ConsensusMethod) -> GroupProfile {
        let schema = self.schema().unwrap_or_default();
        let mut vectors: [Vec<f64>; 4] = [
            vec![0.0; schema.dim(Category::Accommodation)],
            vec![0.0; schema.dim(Category::Transportation)],
            vec![0.0; schema.dim(Category::Restaurant)],
            vec![0.0; schema.dim(Category::Attraction)],
        ];
        if !self.members.is_empty() {
            for category in Category::ALL {
                let member_vectors: Vec<&[f64]> =
                    self.members.iter().map(|m| m.vector(category)).collect();
                vectors[category.index()] = method.aggregate_vectors(&member_vectors);
            }
        }
        GroupProfile {
            group_id: self.group_id,
            method,
            schema,
            vectors,
        }
    }

    /// The *median user* of the group (§4.3.3): the member whose summed
    /// cosine similarity to every other member is highest. Returns `None`
    /// for an empty group.
    #[must_use]
    pub fn median_user(&self) -> Option<&UserProfile> {
        if self.members.is_empty() {
            return None;
        }
        if self.members.len() == 1 {
            return self.members.first();
        }
        let (concatenated, lengths) = self.member_matrix();
        let mut best_idx = 0;
        let mut best_score = f64::NEG_INFINITY;
        for i in 0..self.members.len() {
            let score: f64 = (0..self.members.len())
                .filter(|&j| j != i)
                .map(|j| {
                    if lengths[i] == lengths[j] {
                        cosine_similarity(concatenated.row(i), concatenated.row(j))
                    } else {
                        0.0
                    }
                })
                .sum();
            if score > best_score {
                best_score = score;
                best_idx = i;
            }
        }
        self.members.get(best_idx)
    }
}

/// A group travel profile: one consensus vector per POI category (§2.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroupProfile {
    /// The group this profile belongs to.
    pub group_id: u64,
    /// The consensus method used to build it.
    pub method: ConsensusMethod,
    schema: ProfileSchema,
    vectors: [Vec<f64>; 4],
}

impl GroupProfile {
    /// Builds a group profile directly from per-category vectors (used by
    /// refinement and tests).
    #[must_use]
    pub fn from_vectors(
        group_id: u64,
        method: ConsensusMethod,
        schema: ProfileSchema,
        mut vectors: [Vec<f64>; 4],
    ) -> Self {
        for (idx, category) in Category::ALL.iter().enumerate() {
            vectors[idx].resize(schema.dim(*category), 0.0);
            for v in &mut vectors[idx] {
                *v = v.max(0.0);
            }
        }
        Self {
            group_id,
            method,
            schema,
            vectors,
        }
    }

    /// The schema of the profile.
    #[must_use]
    pub fn schema(&self) -> ProfileSchema {
        self.schema
    }

    /// The consensus vector for a category.
    #[must_use]
    pub fn vector(&self, category: Category) -> &[f64] {
        &self.vectors[category.index()]
    }

    /// Replaces the vector for a category (clamping at zero and resizing to
    /// the schema), as the refinement strategies do.
    pub fn set_vector(&mut self, category: Category, mut values: Vec<f64>) {
        values.resize(self.schema.dim(category), 0.0);
        for v in &mut values {
            *v = v.max(0.0);
        }
        self.vectors[category.index()] = values;
    }

    /// Consensus score of the `type_index`-th type of a category.
    #[must_use]
    pub fn score(&self, category: Category, type_index: usize) -> f64 {
        self.vector(category)
            .get(type_index)
            .copied()
            .unwrap_or(0.0)
    }

    /// Concatenation of all four vectors.
    #[must_use]
    pub fn concatenated(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.schema.total_dim());
        for v in &self.vectors {
            out.extend_from_slice(v);
        }
        out
    }

    /// Cosine similarity between this profile and an item vector of the given
    /// category (the personalization term of Eq. 1).
    #[must_use]
    pub fn item_affinity(&self, category: Category, item_vector: &[f64]) -> f64 {
        cosine_similarity(self.vector(category), item_vector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::ConsensusMethod;

    fn schema() -> ProfileSchema {
        ProfileSchema::new([2, 2, 2, 2])
    }

    fn member(id: u64, value: [f64; 2]) -> UserProfile {
        UserProfile::from_scores(
            id,
            schema(),
            [
                value.to_vec(),
                value.to_vec(),
                value.to_vec(),
                value.to_vec(),
            ],
        )
    }

    #[test]
    fn uniform_group_has_high_uniformity() {
        let g = Group::new(1, vec![member(1, [0.7, 0.3]), member(2, [0.7, 0.3])]);
        assert!((g.uniformity() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_group_has_zero_uniformity() {
        let g = Group::new(1, vec![member(1, [1.0, 0.0]), member(2, [0.0, 1.0])]);
        assert!(g.uniformity().abs() < 1e-9);
    }

    #[test]
    fn singleton_group_is_maximally_uniform() {
        let g = Group::new(1, vec![member(1, [0.5, 0.5])]);
        assert_eq!(g.uniformity(), 1.0);
        assert_eq!(Group::new(2, vec![]).uniformity(), 1.0);
    }

    #[test]
    fn zero_dimensional_schema_has_zero_uniformity_not_nan() {
        let empty_schema = ProfileSchema::new([0, 0, 0, 0]);
        let members = vec![
            UserProfile::empty(1, empty_schema),
            UserProfile::empty(2, empty_schema),
            UserProfile::empty(3, empty_schema),
        ];
        let g = Group::new(1, members);
        assert_eq!(g.uniformity(), 0.0);
        assert!(g.median_user().is_some());
    }

    #[test]
    fn mixed_schema_members_contribute_zero_similarity() {
        // Members whose whole-profile lengths differ compared as 0.0 under
        // the per-member `Vec` implementation (cosine_similarity's
        // length-mismatch guard); the flat matrix must preserve that, and
        // equal-length pairs must still score normally.
        let wide = ProfileSchema::new([3, 3, 3, 3]);
        let a = member(1, [0.7, 0.3]);
        let b = member(2, [0.7, 0.3]);
        let odd = UserProfile::from_scores(
            3,
            wide,
            [
                vec![0.5, 0.5, 0.5],
                vec![0.5, 0.5, 0.5],
                vec![0.5, 0.5, 0.5],
                vec![0.5, 0.5, 0.5],
            ],
        );
        let g = Group::new(1, vec![a, b, odd]);
        // Pairs: (a,b) = 1.0, (a,odd) = 0.0, (b,odd) = 0.0 → mean 1/3.
        assert!((g.uniformity() - 1.0 / 3.0).abs() < 1e-9);
        // a and b each score 1.0 + 0.0; odd scores 0.0 — the median user is
        // one of the matching pair, never the mismatched member.
        assert_ne!(g.median_user().unwrap().user_id, 3);
    }

    #[test]
    fn group_profile_average_preference() {
        let g = Group::new(1, vec![member(1, [1.0, 0.0]), member(2, [0.0, 1.0])]);
        let p = g.profile(ConsensusMethod::average_preference());
        assert_eq!(p.vector(Category::Restaurant), &[0.5, 0.5]);
    }

    #[test]
    fn group_profile_least_misery_is_dominated_by_the_unhappiest() {
        let g = Group::new(1, vec![member(1, [1.0, 0.4]), member(2, [0.2, 0.6])]);
        let p = g.profile(ConsensusMethod::least_misery());
        assert_eq!(p.vector(Category::Attraction), &[0.2, 0.4]);
    }

    #[test]
    fn disagreement_penalizes_divisive_types() {
        // Type 0: everyone agrees at 0.5. Type 1: average 0.5 but divisive.
        let a = UserProfile::from_scores(
            1,
            schema(),
            [
                vec![0.5, 1.0],
                vec![0.5, 1.0],
                vec![0.5, 1.0],
                vec![0.5, 1.0],
            ],
        );
        let b = UserProfile::from_scores(
            2,
            schema(),
            [
                vec![0.5, 0.0],
                vec![0.5, 0.0],
                vec![0.5, 0.0],
                vec![0.5, 0.0],
            ],
        );
        let g = Group::new(1, vec![a, b]);
        let p = g.profile(ConsensusMethod::pairwise_disagreement());
        assert!(p.score(Category::Restaurant, 0) > p.score(Category::Restaurant, 1));
    }

    #[test]
    fn empty_group_profile_is_zero() {
        let g = Group::new(1, vec![]);
        let p = g.profile(ConsensusMethod::average_preference());
        for cat in Category::ALL {
            assert!(p.vector(cat).iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn median_user_is_the_most_central_member() {
        let central = member(1, [0.5, 0.5]);
        let left = member(2, [1.0, 0.0]);
        let right = member(3, [0.0, 1.0]);
        let g = Group::new(1, vec![left, central.clone(), right]);
        assert_eq!(g.median_user().unwrap().user_id, central.user_id);
        assert!(Group::new(2, vec![]).median_user().is_none());
    }

    #[test]
    fn item_affinity_is_cosine_with_the_category_vector() {
        let g = Group::new(1, vec![member(1, [1.0, 0.0])]);
        let p = g.profile(ConsensusMethod::average_preference());
        assert!((p.item_affinity(Category::Attraction, &[1.0, 0.0]) - 1.0).abs() < 1e-9);
        assert_eq!(p.item_affinity(Category::Attraction, &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn set_vector_clamps_and_resizes() {
        let g = Group::new(1, vec![member(1, [1.0, 0.0])]);
        let mut p = g.profile(ConsensusMethod::average_preference());
        p.set_vector(Category::Restaurant, vec![-1.0, 0.4, 9.0]);
        assert_eq!(p.vector(Category::Restaurant), &[0.0, 0.4]);
    }

    #[test]
    fn from_vectors_enforces_schema_and_clamping() {
        let p = GroupProfile::from_vectors(
            7,
            ConsensusMethod::average_preference(),
            schema(),
            [vec![0.1], vec![-0.5, 2.0], vec![0.3, 0.3, 0.3], vec![]],
        );
        assert_eq!(p.vector(Category::Accommodation), &[0.1, 0.0]);
        assert_eq!(p.vector(Category::Transportation), &[0.0, 2.0]);
        assert_eq!(p.vector(Category::Restaurant).len(), 2);
        assert_eq!(p.vector(Category::Attraction), &[0.0, 0.0]);
    }
}
