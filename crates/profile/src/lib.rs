//! User and group travel profiles for GroupTravel.
//!
//! §2.2–2.3 of the paper: every user has, for each POI category, a preference
//! vector over that category's types (normalized 0–5 ratings); a group's
//! profile aggregates its members' vectors with a *consensus function* that
//! combines **group preference** (average or least misery) with **group
//! disagreement** (average pair-wise or variance):
//!
//! ```text
//! g_j = w1 · p_j + w2 · (1 − d_j),   w1 + w2 = 1
//! ```
//!
//! Modules:
//!
//! * [`vector`] — dense preference-vector math (cosine, normalization).
//! * [`schema`] — the per-category dimensionality of profiles/item vectors.
//! * [`user`] — single-user profiles built from ratings.
//! * [`consensus`] — the four consensus functions of §4.1.
//! * [`group`] — groups, group profiles, uniformity and the median user.
//! * [`synthetic`] — the roll-and-dice profile generator and the uniform /
//!   non-uniform group generator of the synthetic experiment (§4.3.1).

pub mod consensus;
pub mod group;
pub mod schema;
pub mod synthetic;
pub mod user;
pub mod vector;

pub use consensus::{ConsensusMethod, DisagreementFunction, PreferenceFunction};
pub use group::{Group, GroupProfile};
pub use schema::ProfileSchema;
pub use synthetic::{GroupSize, SyntheticGroupGenerator, Uniformity};
pub use user::UserProfile;
pub use vector::{cosine_similarity, normalize_ratings};
