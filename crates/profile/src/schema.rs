//! Profile schema: how many POI types each category has.
//!
//! Accommodation and transportation have explicit type vocabularies;
//! restaurants and attractions get their dimensionality from the number of
//! LDA topics. User profiles, group profiles and item vectors all share the
//! schema so that cosine similarities are well-defined.

use grouptravel_dataset::{Category, TypeVocabulary};
use serde::{Deserialize, Serialize};

/// Number of profile/item-vector dimensions per category, indexed in
/// [`Category::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileSchema {
    dims: [usize; 4],
}

impl ProfileSchema {
    /// Builds a schema with explicit per-category dimensions
    /// (accommodation, transportation, restaurant, attraction).
    #[must_use]
    pub fn new(dims: [usize; 4]) -> Self {
        Self { dims }
    }

    /// The default schema: the default accommodation and transportation
    /// vocabularies plus `topics` LDA topics for restaurants and attractions.
    #[must_use]
    pub fn with_topic_count(topics: usize) -> Self {
        Self::new([
            TypeVocabulary::default_accommodation().len(),
            TypeVocabulary::default_transportation().len(),
            topics,
            topics,
        ])
    }

    /// Dimensionality of vectors for `category`.
    #[must_use]
    pub fn dim(&self, category: Category) -> usize {
        self.dims[category.index()]
    }

    /// Total dimensionality of the concatenation of all four categories
    /// (used by uniformity, which compares whole profiles).
    #[must_use]
    pub fn total_dim(&self) -> usize {
        self.dims.iter().sum()
    }

    /// All dimensions in [`Category::ALL`] order.
    #[must_use]
    pub fn dims(&self) -> [usize; 4] {
        self.dims
    }
}

impl Default for ProfileSchema {
    /// Default schema with 4 LDA topics, matching the default themes of the
    /// synthetic dataset.
    fn default() -> Self {
        Self::with_topic_count(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schema_uses_vocabulary_sizes() {
        let s = ProfileSchema::default();
        assert_eq!(
            s.dim(Category::Accommodation),
            TypeVocabulary::default_accommodation().len()
        );
        assert_eq!(
            s.dim(Category::Transportation),
            TypeVocabulary::default_transportation().len()
        );
        assert_eq!(s.dim(Category::Restaurant), 4);
        assert_eq!(s.dim(Category::Attraction), 4);
    }

    #[test]
    fn total_dim_is_the_sum() {
        let s = ProfileSchema::new([2, 3, 4, 5]);
        assert_eq!(s.total_dim(), 14);
        assert_eq!(s.dims(), [2, 3, 4, 5]);
    }

    #[test]
    fn with_topic_count_sets_rest_and_attr() {
        let s = ProfileSchema::with_topic_count(7);
        assert_eq!(s.dim(Category::Restaurant), 7);
        assert_eq!(s.dim(Category::Attraction), 7);
    }
}
