//! Synthetic user and group generation for the paper's synthetic experiment.
//!
//! §4.3.1: user profiles are generated "in an independent roll-and-dice
//! process" (random values in `[0, 1]` per cell); groups are formed by
//! varying their **size** (small = 5, medium = 10, large = 100 members) and
//! **uniformity** (uniform ⇢ average pairwise cosine > 0.85, non-uniform ⇢
//! < 0.20). For each (size, uniformity) combination the paper generates 100
//! random groups and evaluates the four consensus methods, yielding 2400
//! group profiles.

use crate::group::Group;
use crate::schema::ProfileSchema;
use crate::user::UserProfile;
use grouptravel_dataset::Category;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The three group-size classes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GroupSize {
    /// 5 members.
    Small,
    /// 10 members.
    Medium,
    /// 100 members.
    Large,
}

impl GroupSize {
    /// All sizes in the paper's order.
    pub const ALL: [GroupSize; 3] = [GroupSize::Small, GroupSize::Medium, GroupSize::Large];

    /// The number of members in this class.
    #[must_use]
    pub fn member_count(&self) -> usize {
        match self {
            GroupSize::Small => 5,
            GroupSize::Medium => 10,
            GroupSize::Large => 100,
        }
    }

    /// Display name as used in the tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            GroupSize::Small => "small",
            GroupSize::Medium => "medium",
            GroupSize::Large => "large",
        }
    }
}

/// The two uniformity classes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Uniformity {
    /// Average pairwise cosine similarity above 0.85.
    Uniform,
    /// Average pairwise cosine similarity below 0.20.
    NonUniform,
}

impl Uniformity {
    /// Both classes in the paper's order.
    pub const ALL: [Uniformity; 2] = [Uniformity::Uniform, Uniformity::NonUniform];

    /// Display name as used in the tables.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Uniformity::Uniform => "uniform",
            Uniformity::NonUniform => "non-uniform",
        }
    }

    /// Whether a measured uniformity value satisfies this class's threshold.
    #[must_use]
    pub fn accepts(&self, uniformity: f64) -> bool {
        match self {
            Uniformity::Uniform => uniformity > 0.85,
            Uniformity::NonUniform => uniformity < 0.20,
        }
    }
}

/// Deterministic generator of synthetic users and groups.
#[derive(Debug, Clone)]
pub struct SyntheticGroupGenerator {
    schema: ProfileSchema,
    rng: SmallRng,
    next_user_id: u64,
    next_group_id: u64,
}

impl SyntheticGroupGenerator {
    /// Creates a generator with the given profile schema and seed.
    #[must_use]
    pub fn new(schema: ProfileSchema, seed: u64) -> Self {
        Self {
            schema,
            rng: SmallRng::seed_from_u64(seed),
            next_user_id: 1,
            next_group_id: 1,
        }
    }

    /// The schema used for generated profiles.
    #[must_use]
    pub fn schema(&self) -> ProfileSchema {
        self.schema
    }

    /// A fully random ("roll-and-dice") user profile: every cell uniform in
    /// `[0, 1]`.
    pub fn random_user(&mut self) -> UserProfile {
        let id = self.bump_user();
        let scores = Category::ALL.map(|cat| {
            (0..self.schema.dim(cat))
                .map(|_| self.rng.gen_range(0.0..=1.0))
                .collect::<Vec<f64>>()
        });
        UserProfile::from_scores(id, self.schema, scores)
    }

    /// A user profile that is a small perturbation of `base` (keeps groups
    /// uniform).
    pub fn perturbed_user(&mut self, base: &UserProfile, noise: f64) -> UserProfile {
        let id = self.bump_user();
        let scores = Category::ALL.map(|cat| {
            base.vector(cat)
                .iter()
                .map(|&v| (v + self.rng.gen_range(-noise..=noise)).clamp(0.0, 1.0))
                .collect::<Vec<f64>>()
        });
        UserProfile::from_scores(id, self.schema, scores)
    }

    /// A sparse user profile that concentrates its preference on a single
    /// type of a single randomly chosen category and expresses no interest in
    /// anything else (keeps groups non-uniform: two such users rarely share a
    /// strongly preferred type, and the least-misery aggregation of such a
    /// group collapses towards zero, exactly the regime the paper observes).
    pub fn sparse_user(&mut self) -> UserProfile {
        let id = self.bump_user();
        let hot_category = self.rng.gen_range(0..Category::ALL.len());
        let scores = Category::ALL.map(|cat| {
            let dim = self.schema.dim(cat);
            let mut v: Vec<f64> = vec![0.0; dim];
            if dim > 0 && cat.index() == hot_category {
                let hot = self.rng.gen_range(0..dim);
                v[hot] = self.rng.gen_range(0.7..=1.0);
                // A single faint secondary interest keeps the vector from
                // being a pure one-hot without creating a shared background.
                let second = self.rng.gen_range(0..dim);
                if second != hot {
                    v[second] = self.rng.gen_range(0.0..=0.05);
                }
            }
            v
        });
        UserProfile::from_scores(id, self.schema, scores)
    }

    /// Generates a group of the requested size and uniformity class.
    ///
    /// Uniform groups are perturbations of a shared base profile;
    /// non-uniform groups are sparse profiles with (mostly) disjoint
    /// preferences. The generator retries with fresh randomness until the
    /// measured uniformity satisfies the class threshold, which for the
    /// profile dimensionalities used in the paper converges in one or two
    /// attempts.
    pub fn group(&mut self, size: GroupSize, uniformity: Uniformity) -> Group {
        const MAX_ATTEMPTS: usize = 50;
        let n = size.member_count();
        for _ in 0..MAX_ATTEMPTS {
            let members: Vec<UserProfile> = match uniformity {
                Uniformity::Uniform => {
                    let base = self.random_user();
                    let mut members = Vec::with_capacity(n);
                    members.push(base.clone());
                    for _ in 1..n {
                        members.push(self.perturbed_user(&base, 0.08));
                    }
                    members
                }
                Uniformity::NonUniform => (0..n).map(|_| self.sparse_user()).collect(),
            };
            let group = Group::new(self.bump_group(), members);
            if uniformity.accepts(group.uniformity()) {
                return group;
            }
        }
        // Extremely unlikely fallback: return the last attempt regardless.
        let members: Vec<UserProfile> = match uniformity {
            Uniformity::Uniform => {
                let base = self.random_user();
                (0..n).map(|_| self.perturbed_user(&base, 0.02)).collect()
            }
            Uniformity::NonUniform => (0..n).map(|_| self.sparse_user()).collect(),
        };
        Group::new(self.bump_group(), members)
    }

    /// Generates `count` groups for every combination of size and uniformity,
    /// in the paper's nesting order (uniformity outer, size inner).
    pub fn group_matrix(&mut self, count: usize) -> Vec<(Uniformity, GroupSize, Group)> {
        let mut out = Vec::with_capacity(count * 6);
        for uniformity in Uniformity::ALL {
            for size in GroupSize::ALL {
                for _ in 0..count {
                    out.push((uniformity, size, self.group(size, uniformity)));
                }
            }
        }
        out
    }

    fn bump_user(&mut self) -> u64 {
        let id = self.next_user_id;
        self.next_user_id += 1;
        id
    }

    fn bump_group(&mut self) -> u64 {
        let id = self.next_group_id;
        self.next_group_id += 1;
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(seed: u64) -> SyntheticGroupGenerator {
        SyntheticGroupGenerator::new(ProfileSchema::default(), seed)
    }

    #[test]
    fn size_classes_match_the_paper() {
        assert_eq!(GroupSize::Small.member_count(), 5);
        assert_eq!(GroupSize::Medium.member_count(), 10);
        assert_eq!(GroupSize::Large.member_count(), 100);
    }

    #[test]
    fn uniformity_thresholds_match_the_paper() {
        assert!(Uniformity::Uniform.accepts(0.9));
        assert!(!Uniformity::Uniform.accepts(0.85));
        assert!(Uniformity::NonUniform.accepts(0.1));
        assert!(!Uniformity::NonUniform.accepts(0.25));
    }

    #[test]
    fn random_user_scores_are_in_unit_interval() {
        let mut generator = generator(1);
        let user = generator.random_user();
        for cat in Category::ALL {
            assert!(user.vector(cat).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generator(5).random_user();
        let b = generator(5).random_user();
        assert_eq!(a, b);
        let c = generator(6).random_user();
        assert_ne!(a.concatenated(), c.concatenated());
    }

    #[test]
    fn uniform_groups_satisfy_their_threshold() {
        let mut generator = generator(11);
        for size in [GroupSize::Small, GroupSize::Medium] {
            let group = generator.group(size, Uniformity::Uniform);
            assert_eq!(group.size(), size.member_count());
            assert!(
                group.uniformity() > 0.85,
                "uniformity {} too low",
                group.uniformity()
            );
        }
    }

    #[test]
    fn non_uniform_groups_satisfy_their_threshold() {
        let mut generator = generator(13);
        for size in [GroupSize::Small, GroupSize::Medium] {
            let group = generator.group(size, Uniformity::NonUniform);
            assert!(
                group.uniformity() < 0.20,
                "uniformity {} too high",
                group.uniformity()
            );
        }
    }

    #[test]
    fn large_groups_can_be_generated_for_both_classes() {
        let mut generator = generator(17);
        let uniform = generator.group(GroupSize::Large, Uniformity::Uniform);
        assert_eq!(uniform.size(), 100);
        assert!(uniform.uniformity() > 0.85);
        let non_uniform = generator.group(GroupSize::Large, Uniformity::NonUniform);
        assert!(non_uniform.uniformity() < 0.20);
    }

    #[test]
    fn group_matrix_covers_all_combinations() {
        let mut generator = generator(19);
        let matrix = generator.group_matrix(2);
        assert_eq!(matrix.len(), 2 * 3 * 2);
        let small_uniform = matrix
            .iter()
            .filter(|(u, s, _)| *u == Uniformity::Uniform && *s == GroupSize::Small)
            .count();
        assert_eq!(small_uniform, 2);
        // Group ids are unique.
        let mut ids: Vec<u64> = matrix.iter().map(|(_, _, g)| g.group_id).collect();
        let len = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), len);
    }
}
