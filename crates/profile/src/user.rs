//! Single-user travel profiles.
//!
//! A user has one preference vector per POI category (§2.2). The vector is
//! obtained by asking the user to rate each POI type (accommodation,
//! transportation) or latent topic (restaurant, attraction) on a 0–5 scale
//! and normalizing: `u_j = r_j / Σ_k r_k`.

use crate::schema::ProfileSchema;
use crate::vector::{cosine_similarity, normalize_ratings};
use grouptravel_dataset::Category;
use serde::{Deserialize, Serialize};

/// A single user's travel profile: one preference vector per category.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Optional identifier (participant id in the user study, index in the
    /// synthetic experiment).
    pub user_id: u64,
    schema: ProfileSchema,
    /// Preference vectors indexed by [`Category::ALL`] order.
    vectors: [Vec<f64>; 4],
}

impl UserProfile {
    /// Creates a profile with all-zero preference vectors.
    #[must_use]
    pub fn empty(user_id: u64, schema: ProfileSchema) -> Self {
        let vectors = [
            vec![0.0; schema.dim(Category::Accommodation)],
            vec![0.0; schema.dim(Category::Transportation)],
            vec![0.0; schema.dim(Category::Restaurant)],
            vec![0.0; schema.dim(Category::Attraction)],
        ];
        Self {
            user_id,
            schema,
            vectors,
        }
    }

    /// Builds a profile from raw 0–5 ratings per category, normalizing each
    /// category independently. Ratings shorter than the schema dimension are
    /// zero-padded; longer ones are truncated.
    #[must_use]
    pub fn from_ratings(user_id: u64, schema: ProfileSchema, ratings: [&[f64]; 4]) -> Self {
        let mut profile = Self::empty(user_id, schema);
        for (idx, category) in Category::ALL.iter().enumerate() {
            profile.set_ratings(*category, ratings[idx]);
        }
        profile
    }

    /// Builds a profile from already-normalized scores (used by the synthetic
    /// generator and the refinement logic). Each vector is resized to the
    /// schema dimension.
    #[must_use]
    pub fn from_scores(user_id: u64, schema: ProfileSchema, scores: [Vec<f64>; 4]) -> Self {
        let mut profile = Self::empty(user_id, schema);
        for (idx, category) in Category::ALL.iter().enumerate() {
            profile.set_scores(*category, scores[idx].clone());
        }
        profile
    }

    /// Replaces the ratings for one category (normalizing them).
    pub fn set_ratings(&mut self, category: Category, ratings: &[f64]) {
        let dim = self.schema.dim(category);
        let mut padded = ratings.to_vec();
        padded.resize(dim, 0.0);
        self.vectors[category.index()] = normalize_ratings(&padded);
    }

    /// Replaces the scores for one category without normalizing (values are
    /// clamped to be non-negative and the vector resized to the schema).
    pub fn set_scores(&mut self, category: Category, mut scores: Vec<f64>) {
        let dim = self.schema.dim(category);
        scores.resize(dim, 0.0);
        for s in &mut scores {
            *s = s.max(0.0);
        }
        self.vectors[category.index()] = scores;
    }

    /// The schema of this profile.
    #[must_use]
    pub fn schema(&self) -> ProfileSchema {
        self.schema
    }

    /// Preference vector for a category.
    #[must_use]
    pub fn vector(&self, category: Category) -> &[f64] {
        &self.vectors[category.index()]
    }

    /// Single preference score for the `type_index`-th type of a category
    /// (0 if out of range).
    #[must_use]
    pub fn score(&self, category: Category, type_index: usize) -> f64 {
        self.vector(category)
            .get(type_index)
            .copied()
            .unwrap_or(0.0)
    }

    /// Writes the concatenation of all four category vectors (in
    /// [`Category::ALL`] order) into `out`, truncating if `out` is shorter,
    /// and returns the concatenation's *true* total length. This is the one
    /// owner of the whole-profile layout; [`UserProfile::concatenated`] and
    /// the group-level comparisons (uniformity, median user) both go
    /// through it.
    pub fn concat_into(&self, out: &mut [f64]) -> usize {
        let mut offset = 0usize;
        for v in &self.vectors {
            let end = (offset + v.len()).min(out.len());
            if offset < end {
                out[offset..end].copy_from_slice(&v[..end - offset]);
            }
            offset += v.len();
        }
        offset
    }

    /// The true length of the whole-profile concatenation (the sum of the
    /// four vectors' actual lengths — equal to `schema().total_dim()` for
    /// profiles built through the constructors, which resize to the
    /// schema, but trusted over the schema for comparisons).
    #[must_use]
    pub fn concatenated_len(&self) -> usize {
        self.vectors.iter().map(Vec::len).sum()
    }

    /// Concatenation of all four category vectors, used to compare whole
    /// profiles (group uniformity, median user).
    #[must_use]
    pub fn concatenated(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.concatenated_len()];
        self.concat_into(&mut out);
        out
    }

    /// Cosine similarity between two whole profiles.
    #[must_use]
    pub fn similarity(&self, other: &UserProfile) -> f64 {
        cosine_similarity(&self.concatenated(), &other.concatenated())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> ProfileSchema {
        ProfileSchema::new([2, 2, 3, 3])
    }

    #[test]
    fn empty_profile_is_all_zero() {
        let p = UserProfile::empty(1, schema());
        for cat in Category::ALL {
            assert!(p.vector(cat).iter().all(|&x| x == 0.0));
            assert_eq!(p.vector(cat).len(), schema().dim(cat));
        }
    }

    #[test]
    fn from_ratings_normalizes_each_category() {
        let p = UserProfile::from_ratings(
            1,
            schema(),
            [&[4.0, 1.0], &[0.0, 5.0], &[1.0, 1.0, 2.0], &[3.0, 0.0, 0.0]],
        );
        assert!((p.score(Category::Accommodation, 0) - 0.8).abs() < 1e-12);
        assert!((p.score(Category::Transportation, 1) - 1.0).abs() < 1e-12);
        let sum: f64 = p.vector(Category::Restaurant).iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratings_are_padded_and_truncated_to_schema() {
        let mut p = UserProfile::empty(1, schema());
        p.set_ratings(Category::Attraction, &[5.0]);
        assert_eq!(p.vector(Category::Attraction), &[1.0, 0.0, 0.0]);
        p.set_ratings(Category::Attraction, &[1.0, 1.0, 1.0, 9.0]);
        assert_eq!(p.vector(Category::Attraction).len(), 3);
    }

    #[test]
    fn set_scores_clamps_negatives() {
        let mut p = UserProfile::empty(1, schema());
        p.set_scores(Category::Restaurant, vec![-0.5, 0.3, 0.2]);
        assert_eq!(p.vector(Category::Restaurant), &[0.0, 0.3, 0.2]);
    }

    #[test]
    fn concatenated_has_total_dim() {
        let p = UserProfile::empty(1, schema());
        assert_eq!(p.concatenated().len(), schema().total_dim());
    }

    #[test]
    fn similarity_of_identical_profiles_is_one() {
        let p = UserProfile::from_ratings(
            1,
            schema(),
            [&[1.0, 2.0], &[2.0, 1.0], &[1.0, 1.0, 1.0], &[2.0, 1.0, 0.0]],
        );
        assert!((p.similarity(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn similarity_of_disjoint_profiles_is_zero() {
        let a = UserProfile::from_ratings(
            1,
            schema(),
            [&[1.0, 0.0], &[1.0, 0.0], &[1.0, 0.0, 0.0], &[1.0, 0.0, 0.0]],
        );
        let b = UserProfile::from_ratings(
            2,
            schema(),
            [&[0.0, 1.0], &[0.0, 1.0], &[0.0, 1.0, 0.0], &[0.0, 1.0, 0.0]],
        );
        assert!(a.similarity(&b).abs() < 1e-12);
    }
}
