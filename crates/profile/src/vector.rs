//! Dense preference-vector math.

/// Cosine similarity between two equal-length vectors.
///
/// Returns 0 when either vector has zero norm or the lengths differ — the
/// paper treats "no preference expressed" as zero affinity rather than an
/// error, and the objective function simply gains nothing from such items.
#[must_use]
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    if a.len() != b.len() || a.is_empty() {
        return 0.0;
    }
    let mut dot = 0.0;
    let mut norm_a = 0.0;
    let mut norm_b = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        dot += x * y;
        norm_a += x * x;
        norm_b += y * y;
    }
    if norm_a <= f64::EPSILON || norm_b <= f64::EPSILON {
        return 0.0;
    }
    dot / (norm_a.sqrt() * norm_b.sqrt())
}

/// Normalizes raw 0–5 ratings into the profile scores of §2.2:
/// `u_j = r_j / Σ_k r_k`. All-zero ratings produce an all-zero vector.
#[must_use]
pub fn normalize_ratings(ratings: &[f64]) -> Vec<f64> {
    let total: f64 = ratings.iter().map(|r| r.max(0.0)).sum();
    if total <= f64::EPSILON {
        return vec![0.0; ratings.len()];
    }
    ratings.iter().map(|r| r.max(0.0) / total).collect()
}

/// Element-wise sum of two vectors (shorter vector is implicitly
/// zero-padded).
#[must_use]
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    let len = a.len().max(b.len());
    (0..len)
        .map(|i| a.get(i).copied().unwrap_or(0.0) + b.get(i).copied().unwrap_or(0.0))
        .collect()
}

/// Element-wise difference `a − b`, clamped at zero (the paper clamps refined
/// profile components that fall below 0).
#[must_use]
pub fn sub_clamped(a: &[f64], b: &[f64]) -> Vec<f64> {
    let len = a.len().max(b.len());
    (0..len)
        .map(|i| (a.get(i).copied().unwrap_or(0.0) - b.get(i).copied().unwrap_or(0.0)).max(0.0))
        .collect()
}

/// Arithmetic mean of a set of equal-length vectors. Returns an empty vector
/// for empty input.
#[must_use]
pub fn mean_vector(vectors: &[Vec<f64>]) -> Vec<f64> {
    let Some(first) = vectors.first() else {
        return Vec::new();
    };
    let mut acc = vec![0.0; first.len()];
    for v in vectors {
        for (slot, &x) in acc.iter_mut().zip(v) {
            *slot += x;
        }
    }
    let n = vectors.len() as f64;
    acc.iter_mut().for_each(|x| *x /= n);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_of_identical_vectors_is_one() {
        let v = vec![0.2, 0.5, 0.3];
        assert!((cosine_similarity(&v, &v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_of_orthogonal_vectors_is_zero() {
        assert_eq!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn cosine_handles_zero_and_mismatched_vectors() {
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine_similarity(&[1.0], &[1.0, 2.0]), 0.0);
        assert_eq!(cosine_similarity(&[], &[]), 0.0);
    }

    #[test]
    fn cosine_known_value() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 5.0, 6.0];
        let expected = 32.0 / ((14.0f64).sqrt() * (77.0f64).sqrt());
        assert!((cosine_similarity(&a, &b) - expected).abs() < 1e-12);
    }

    #[test]
    fn normalize_ratings_sums_to_one() {
        let scores = normalize_ratings(&[4.0, 5.0, 3.0, 1.0]);
        let sum: f64 = scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((scores[1] - 5.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_all_zero_ratings_stays_zero() {
        assert_eq!(normalize_ratings(&[0.0, 0.0]), vec![0.0, 0.0]);
    }

    #[test]
    fn normalize_negative_ratings_are_treated_as_zero() {
        let scores = normalize_ratings(&[-1.0, 5.0]);
        assert_eq!(scores, vec![0.0, 1.0]);
    }

    #[test]
    fn add_and_sub_clamped() {
        assert_eq!(add(&[1.0, 2.0], &[0.5, 0.5]), vec![1.5, 2.5]);
        assert_eq!(add(&[1.0], &[0.5, 0.5]), vec![1.5, 0.5]);
        assert_eq!(sub_clamped(&[1.0, 0.2], &[0.5, 0.5]), vec![0.5, 0.0]);
    }

    #[test]
    fn mean_vector_averages_elementwise() {
        let m = mean_vector(&[vec![1.0, 3.0], vec![3.0, 5.0]]);
        assert_eq!(m, vec![2.0, 4.0]);
        assert!(mean_vector(&[]).is_empty());
    }
}
