//! Property-based tests for profiles, consensus functions and groups.

use grouptravel_dataset::Category;
use grouptravel_profile::consensus::{DisagreementFunction, PreferenceFunction};
use grouptravel_profile::{
    cosine_similarity, normalize_ratings, ConsensusMethod, Group, ProfileSchema, UserProfile,
};
use proptest::prelude::*;

fn scores_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..=1.0, len..=len)
}

fn member_scores() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..=1.0, 1..20)
}

proptest! {
    #[test]
    fn normalized_ratings_sum_to_one_or_stay_zero(ratings in prop::collection::vec(0.0f64..=5.0, 1..12)) {
        let normalized = normalize_ratings(&ratings);
        let sum: f64 = normalized.iter().sum();
        let total: f64 = ratings.iter().sum();
        if total > f64::EPSILON {
            prop_assert!((sum - 1.0).abs() < 1e-9);
        } else {
            prop_assert!(sum.abs() < 1e-12);
        }
        prop_assert!(normalized.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn cosine_similarity_is_bounded_and_symmetric(
        a in prop::collection::vec(0.0f64..=1.0, 1..16),
        b in prop::collection::vec(0.0f64..=1.0, 1..16),
    ) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let ab = cosine_similarity(a, b);
        let ba = cosine_similarity(b, a);
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    #[test]
    fn least_misery_never_exceeds_average_preference(scores in member_scores()) {
        let avg = PreferenceFunction::Average.aggregate(&scores);
        let lm = PreferenceFunction::LeastMisery.aggregate(&scores);
        prop_assert!(lm <= avg + 1e-12);
    }

    #[test]
    fn disagreement_is_non_negative_and_zero_iff_constant(scores in member_scores()) {
        for f in [DisagreementFunction::AveragePairwise, DisagreementFunction::Variance] {
            let d = f.aggregate(&scores);
            prop_assert!(d >= 0.0);
            let constant = vec![scores[0]; scores.len()];
            prop_assert!(f.aggregate(&constant) < 1e-9);
        }
    }

    #[test]
    fn consensus_scores_stay_in_unit_interval(scores in member_scores(), w1 in 0.0f64..=1.0) {
        let methods = [
            ConsensusMethod::average_preference(),
            ConsensusMethod::least_misery(),
            ConsensusMethod::pairwise_disagreement(),
            ConsensusMethod::disagreement_variance(),
            ConsensusMethod::custom(
                PreferenceFunction::Average,
                Some(DisagreementFunction::Variance),
                w1,
            ),
        ];
        for method in methods {
            let g = method.score(&scores);
            prop_assert!((0.0..=1.0).contains(&g), "{method}: {g}");
        }
    }

    #[test]
    fn group_uniformity_is_in_unit_interval_and_order_independent(
        a in scores_vec(4),
        b in scores_vec(4),
        c in scores_vec(4),
    ) {
        let schema = ProfileSchema::new([4, 4, 4, 4]);
        let member = |id: u64, v: &Vec<f64>| {
            UserProfile::from_scores(id, schema, [v.clone(), v.clone(), v.clone(), v.clone()])
        };
        let g1 = Group::new(1, vec![member(1, &a), member(2, &b), member(3, &c)]);
        let g2 = Group::new(2, vec![member(3, &c), member(1, &a), member(2, &b)]);
        let u1 = g1.uniformity();
        let u2 = g2.uniformity();
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&u1));
        prop_assert!((u1 - u2).abs() < 1e-9);
    }

    #[test]
    fn group_profile_vectors_match_the_schema_and_stay_non_negative(
        a in scores_vec(3),
        b in scores_vec(3),
    ) {
        let schema = ProfileSchema::new([3, 3, 3, 3]);
        let member = |id: u64, v: &Vec<f64>| {
            UserProfile::from_scores(id, schema, [v.clone(), v.clone(), v.clone(), v.clone()])
        };
        let group = Group::new(7, vec![member(1, &a), member(2, &b)]);
        for method in ConsensusMethod::paper_variants() {
            let profile = group.profile(method);
            for cat in Category::ALL {
                prop_assert_eq!(profile.vector(cat).len(), schema.dim(cat));
                prop_assert!(profile.vector(cat).iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }
    }

    #[test]
    fn median_user_is_always_a_member(
        members in prop::collection::vec(scores_vec(3), 1..8),
    ) {
        let schema = ProfileSchema::new([3, 3, 3, 3]);
        let profiles: Vec<UserProfile> = members
            .iter()
            .enumerate()
            .map(|(idx, v)| {
                UserProfile::from_scores(idx as u64 + 1, schema, [v.clone(), v.clone(), v.clone(), v.clone()])
            })
            .collect();
        let group = Group::new(1, profiles.clone());
        let median = group.median_user().expect("non-empty group");
        prop_assert!(profiles.iter().any(|p| p.user_id == median.user_id));
    }
}
