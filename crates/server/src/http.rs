//! A deliberately small HTTP/1.1 implementation: request parsing and
//! response writing over blocking streams.
//!
//! The build environment is offline, so there is no hyper/axum to lean on —
//! and the front-end needs only the fraction of HTTP/1.1 a JSON RPC surface
//! exercises: request line + headers + `Content-Length` bodies, keep-alive
//! by default, `Connection: close` honoured, nothing chunked, no TLS. The
//! parser is strict about what it accepts and typed about how it fails;
//! everything beyond this subset is answered at the routing layer, not
//! guessed at here.

use std::io::{self, BufRead, Write};

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method verb, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// The request path including any query string (`/v1/engine`).
    pub path: String,
    /// Lowercased header names with their untrimmed-value pairs.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by case-insensitive name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Whether the client asked for the connection to close after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Why reading a request off a connection stopped.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed (or timed out) before sending a request line —
    /// the normal end of a keep-alive connection, not a protocol error.
    ConnectionClosed,
    /// The bytes on the wire were not a well-formed HTTP/1.x request.
    Malformed(String),
    /// The declared body exceeds the server's limit.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The server's limit.
        limit: usize,
    },
    /// The underlying transport failed mid-request.
    Io(io::Error),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Maximum accepted size of the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Reads one request from a blocking stream.
///
/// # Errors
/// See [`ReadError`]; `ConnectionClosed` is the clean end of a keep-alive
/// connection.
pub fn read_request(stream: &mut impl BufRead, max_body: usize) -> Result<Request, ReadError> {
    let request_line = match read_line(stream, MAX_HEAD_BYTES)? {
        Some(line) if !line.is_empty() => line,
        // EOF before a request line, or a bare blank line: peer is done.
        _ => return Err(ReadError::ConnectionClosed),
    };
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadError::Malformed(format!(
            "bad request line `{request_line}`"
        )));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "bad request line `{request_line}`"
        )));
    }

    let mut headers = Vec::new();
    let mut head_budget = MAX_HEAD_BYTES.saturating_sub(request_line.len());
    loop {
        let Some(line) = read_line(stream, head_budget)? else {
            return Err(ReadError::Malformed(
                "connection closed mid-headers".to_string(),
            ));
        };
        if line.is_empty() {
            break;
        }
        head_budget = head_budget.saturating_sub(line.len());
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header line `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // This subset of HTTP/1.1 frames bodies by Content-Length only.
    // Silently treating a chunked body as length 0 would desync the
    // connection (the chunk bytes would parse as a bogus next request),
    // so anything transfer-encoded is rejected outright.
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(ReadError::Malformed(
            "Transfer-Encoding is not supported; send a Content-Length body".to_string(),
        ));
    }
    let content_length = match headers.iter().find(|(k, _)| k == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed(format!("bad Content-Length `{v}`")))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(ReadError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body,
    })
}

/// Reads one CRLF- (or LF-) terminated line, without its terminator.
/// Returns `None` on immediate EOF. Lines longer than `limit` are malformed.
fn read_line(stream: &mut impl BufRead, limit: usize) -> Result<Option<String>, ReadError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        match stream.read(&mut byte) {
            Ok(0) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(ReadError::Malformed("connection closed mid-line".into()));
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    if line.last() == Some(&b'\r') {
                        line.pop();
                    }
                    return String::from_utf8(line)
                        .map(Some)
                        .map_err(|_| ReadError::Malformed("non-UTF-8 request head".into()));
                }
                line.push(byte[0]);
                if line.len() > limit {
                    return Err(ReadError::Malformed("request head too large".into()));
                }
            }
            Err(e) => return Err(ReadError::Io(e)),
        }
    }
}

/// The reason phrase for the status codes this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Writes one response with an explicit content type. `close` adds
/// `Connection: close` (the server's keep-alive decision, echoed to the
/// client).
///
/// # Errors
/// Propagates transport failures.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &str,
    close: bool,
) -> io::Result<()> {
    let connection = if close { "Connection: close\r\n" } else { "" };
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{connection}\r\n",
        reason(status),
        body.len(),
    )?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// [`write_response`] with `application/json` (the wire protocol's type).
///
/// # Errors
/// Propagates transport failures.
pub fn write_json_response(
    stream: &mut impl Write,
    status: u16,
    body: &str,
    close: bool,
) -> io::Result<()> {
    write_response(stream, status, "application/json", body, close)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /v1/engine HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/engine");
        assert_eq!(req.body, b"{\"a\"");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_a_bodyless_get_and_connection_close() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn eof_before_a_request_is_a_clean_close() {
        assert!(matches!(parse(""), Err(ReadError::ConnectionClosed)));
    }

    #[test]
    fn garbage_is_malformed_not_a_panic() {
        assert!(matches!(
            parse("how now\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SMTP/1.1\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn chunked_bodies_are_rejected_not_desynced() {
        let result =
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nbody\r\n0\r\n\r\n");
        assert!(matches!(result, Err(ReadError::Malformed(_))));
    }

    #[test]
    fn oversized_bodies_are_rejected_before_allocation() {
        let result = parse("POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n");
        assert!(matches!(
            result,
            Err(ReadError::BodyTooLarge {
                declared: 999_999,
                limit: 1024
            })
        ));
    }

    #[test]
    fn responses_have_the_expected_shape() {
        let mut out = Vec::new();
        write_json_response(&mut out, 200, "{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
