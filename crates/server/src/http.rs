//! A deliberately small HTTP/1.1 implementation: request parsing and
//! response writing.
//!
//! The build environment is offline, so there is no hyper/axum to lean on —
//! and the front-end needs only the fraction of HTTP/1.1 a JSON RPC surface
//! exercises: request line + headers + `Content-Length` bodies, keep-alive
//! by default, `Connection: close` honoured, nothing chunked, no TLS. The
//! parser is strict about what it accepts and typed about how it fails;
//! everything beyond this subset is answered at the routing layer, not
//! guessed at here.
//!
//! The core is [`RequestParser`], an **incremental** state machine: bytes
//! are [`fed`](RequestParser::feed) in whatever fragments the transport
//! delivers them — a byte at a time under an epoll readiness loop, a whole
//! pipelined burst at once — and [`poll`](RequestParser::poll) yields each
//! completed request as soon as its last byte arrives, keeping any
//! overshoot buffered for the next request on the connection. The blocking
//! [`read_request`] convenience is a thin loop over the same machine, so
//! the reactor and the blocking fallback cannot disagree about what parses.

use std::io::{self, BufRead, Write};

/// One parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method verb, uppercased by the client (`GET`, `POST`, …).
    pub method: String,
    /// The request target as sent, including any query string
    /// (`/v1/engine`, `/stats?pretty`). Routing splits at `?`.
    pub path: String,
    /// Lowercased header names with their untrimmed-value pairs.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header, by case-insensitive name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The request path with any query string cut off: `/stats?pretty`
    /// routes (and is metric-labelled) as `/stats`.
    #[must_use]
    pub fn route_path(&self) -> &str {
        self.path.split('?').next().unwrap_or(&self.path)
    }

    /// Whether the client asked for the connection to close after this
    /// exchange (HTTP/1.1 defaults to keep-alive). `Connection` is a
    /// comma-separated token list, so `keep-alive, close` closes too.
    #[must_use]
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| {
            v.split(',')
                .any(|token| token.trim().eq_ignore_ascii_case("close"))
        })
    }
}

/// Why reading a request off a connection stopped.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed (or timed out) before sending a request line —
    /// the normal end of a keep-alive connection, not a protocol error.
    ConnectionClosed,
    /// The bytes on the wire were not a well-formed HTTP/1.x request.
    Malformed(String),
    /// The declared body exceeds the server's limit.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The server's limit.
        limit: usize,
    },
    /// The underlying transport failed mid-request.
    Io(io::Error),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Maximum accepted size of the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// The head of a request whose body has not finished arriving.
#[derive(Debug)]
struct PendingBody {
    method: String,
    path: String,
    headers: Vec<(String, String)>,
    content_length: usize,
}

/// An incremental HTTP/1.1 request parser: a connection owns one for its
/// whole life, feeds it raw reads, and polls completed requests out of it.
/// Bytes beyond a completed request stay buffered (pipelining), and a
/// request split across arbitrarily many feeds — one byte per readiness
/// event, a head/body boundary mid-TCP-segment — resumes where it left
/// off. All limits (head size, body size) are enforced as bytes arrive,
/// before anything is buffered unboundedly.
#[derive(Debug)]
pub struct RequestParser {
    max_body: usize,
    /// Unconsumed input. Head bytes are drained once the head parses;
    /// body bytes once the request completes.
    buf: Vec<u8>,
    /// Resume offset for the blank-line scan, so re-polling after a
    /// one-byte feed is O(1), not a rescan of the whole head.
    scanned: usize,
    /// Set once the head has parsed; the body is still arriving.
    pending: Option<PendingBody>,
}

impl RequestParser {
    /// A parser enforcing `max_body` on declared `Content-Length`s.
    #[must_use]
    pub fn new(max_body: usize) -> Self {
        Self {
            max_body,
            buf: Vec::new(),
            scanned: 0,
            pending: None,
        }
    }

    /// Appends transport bytes. Call [`poll`](Self::poll) afterwards —
    /// one feed can complete several pipelined requests.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Number of buffered, not-yet-consumed bytes.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether the parser sits cleanly between requests: nothing buffered,
    /// no partial head or body. EOF here is a clean keep-alive close; EOF
    /// anywhere else is a peer that died mid-request.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.buf.is_empty() && self.pending.is_none()
    }

    /// Tries to complete one request from the buffered bytes.
    ///
    /// Returns `Ok(None)` when more input is needed. After `Ok(Some(_))`,
    /// call again — the next pipelined request may already be buffered.
    ///
    /// # Errors
    /// `Malformed` / `BodyTooLarge` as in [`ReadError`]; a parser that has
    /// returned an error is poisoned for the connection (framing is lost —
    /// the caller must close).
    pub fn poll(&mut self) -> Result<Option<Request>, ReadError> {
        while self.pending.is_none() {
            match self.find_head_end()? {
                Some(head_end) => {
                    let head = &self.buf[..head_end];
                    // Blank line(s) before the request line are padding
                    // (RFC 9112 §2.2): skip and rescan.
                    let pending = if head.iter().all(|&b| b == b'\r' || b == b'\n') {
                        None
                    } else {
                        Some(parse_head(head, self.max_body)?)
                    };
                    self.buf.drain(..head_end);
                    self.scanned = 0;
                    if let Some(pending) = pending {
                        self.pending = Some(pending);
                    }
                }
                None => return Ok(None),
            }
        }
        let needed = self
            .pending
            .as_ref()
            .expect("pending set above")
            .content_length;
        if self.buf.len() < needed {
            return Ok(None);
        }
        let PendingBody {
            method,
            path,
            headers,
            content_length,
        } = self.pending.take().expect("pending set above");
        let body: Vec<u8> = self.buf.drain(..content_length).collect();
        self.scanned = 0;
        Ok(Some(Request {
            method,
            path,
            headers,
            body,
        }))
    }

    /// Scans for the head-terminating blank line; returns the byte offset
    /// one past it. Lines end in `\n` with an optional `\r`.
    fn find_head_end(&mut self) -> Result<Option<usize>, ReadError> {
        let mut i = self.scanned;
        while i < self.buf.len() {
            if self.buf[i] == b'\n' {
                // A `\n` directly after the previous line's `\n` (modulo
                // one `\r`) terminates the head.
                let line_start = self.buf[..i]
                    .iter()
                    .rposition(|&b| b == b'\n')
                    .map_or(0, |p| p + 1);
                let line = &self.buf[line_start..i];
                if line.is_empty() || line == b"\r" {
                    return Ok(Some(i + 1));
                }
            }
            i += 1;
        }
        self.scanned = i;
        if self.buf.len() > MAX_HEAD_BYTES {
            return Err(ReadError::Malformed("request head too large".into()));
        }
        Ok(None)
    }
}

/// Parses a complete head (request line + headers + terminating blank
/// line) and validates framing headers.
fn parse_head(head: &[u8], max_body: usize) -> Result<PendingBody, ReadError> {
    let head = std::str::from_utf8(head)
        .map_err(|_| ReadError::Malformed("non-UTF-8 request head".into()))?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ReadError::Malformed(format!(
            "bad request line `{request_line}`"
        )));
    };
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "bad request line `{request_line}`"
        )));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ReadError::Malformed(format!("bad header line `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    // This subset of HTTP/1.1 frames bodies by Content-Length only.
    // Silently treating a chunked body as length 0 would desync the
    // connection (the chunk bytes would parse as a bogus next request),
    // so anything transfer-encoded is rejected outright.
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(ReadError::Malformed(
            "Transfer-Encoding is not supported; send a Content-Length body".to_string(),
        ));
    }
    // Duplicate `Content-Length` headers that *disagree* are the classic
    // request-desync primitive on kept-alive connections: two framings,
    // one wire. Reject them; agreeing repeats are tolerated per RFC 9110.
    let mut content_length: Option<usize> = None;
    for (_, v) in headers.iter().filter(|(k, _)| k == "content-length") {
        let n = v
            .parse::<usize>()
            .map_err(|_| ReadError::Malformed(format!("bad Content-Length `{v}`")))?;
        match content_length {
            Some(prev) if prev != n => {
                return Err(ReadError::Malformed(format!(
                    "conflicting Content-Length headers ({prev} vs {n})"
                )));
            }
            _ => content_length = Some(n),
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > max_body {
        return Err(ReadError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    Ok(PendingBody {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        content_length,
    })
}

/// Reads one request from a blocking stream: a convenience loop over
/// [`RequestParser`] for one-shot parsing. Connection loops that must
/// preserve pipelined bytes across requests should hold their own parser
/// and use [`read_request_with`] instead — this function's parser (and any
/// overshoot buffered in it) is dropped on return.
///
/// # Errors
/// See [`ReadError`]; `ConnectionClosed` is the clean end of a keep-alive
/// connection.
pub fn read_request(stream: &mut impl BufRead, max_body: usize) -> Result<Request, ReadError> {
    let mut parser = RequestParser::new(max_body);
    read_request_with(&mut parser, stream)
}

/// Reads one request from a blocking stream through a caller-held parser,
/// so bytes beyond the returned request (the next pipelined request)
/// survive in the parser for the following call.
///
/// # Errors
/// See [`ReadError`]; `ConnectionClosed` is the clean end of a keep-alive
/// connection.
pub fn read_request_with(
    parser: &mut RequestParser,
    stream: &mut impl BufRead,
) -> Result<Request, ReadError> {
    loop {
        if let Some(request) = parser.poll()? {
            return Ok(request);
        }
        let chunk = stream.fill_buf()?;
        if chunk.is_empty() {
            return Err(if parser.is_clean() {
                ReadError::ConnectionClosed
            } else {
                ReadError::Malformed("connection closed mid-request".into())
            });
        }
        let n = chunk.len();
        parser.feed(chunk);
        stream.consume(n);
    }
}

/// The reason phrase for the status codes this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Renders one response (head + body) into a byte buffer — the reactor's
/// write state machine sends from this, possibly across many readiness
/// events. `close` adds `Connection: close` (the server's keep-alive
/// decision, echoed to the client).
#[must_use]
pub fn encode_response(status: u16, content_type: &str, body: &[u8], close: bool) -> Vec<u8> {
    let connection = if close { "Connection: close\r\n" } else { "" };
    let mut out = Vec::with_capacity(body.len() + 128);
    let _ = write!(
        out,
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n{connection}\r\n",
        reason(status),
        body.len(),
    );
    out.extend_from_slice(body);
    out
}

/// Writes one response with an explicit content type over a blocking
/// stream.
///
/// # Errors
/// Propagates transport failures.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    stream.write_all(&encode_response(status, content_type, body, close))?;
    stream.flush()
}

/// [`write_response`] with `application/json` (the wire protocol's type).
///
/// # Errors
/// Propagates transport failures.
pub fn write_json_response(
    stream: &mut impl Write,
    status: u16,
    body: &[u8],
    close: bool,
) -> io::Result<()> {
    write_response(stream, status, "application/json", body, close)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut BufReader::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /v1/engine HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\n{\"a\"")
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/engine");
        assert_eq!(req.body, b"{\"a\"");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.header("HOST"), Some("x"));
        assert!(!req.wants_close());
    }

    #[test]
    fn parses_a_bodyless_get_and_connection_close() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(req.wants_close());
    }

    #[test]
    fn connection_close_is_recognized_as_a_list_token() {
        // `Connection` is a comma-separated token list: `keep-alive, close`
        // still closes (regression: only the exact value used to match).
        let req = parse("GET / HTTP/1.1\r\nConnection: keep-alive, Close\r\n\r\n").unwrap();
        assert!(req.wants_close());
        let req = parse("GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!req.wants_close());
        // `close` must be a whole token, not a substring of one.
        let req = parse("GET / HTTP/1.1\r\nConnection: closed-captioning\r\n\r\n").unwrap();
        assert!(!req.wants_close());
    }

    #[test]
    fn route_path_cuts_the_query_string() {
        let req = parse("GET /healthz?probe=1 HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.path, "/healthz?probe=1");
        assert_eq!(req.route_path(), "/healthz");
        let req = parse("GET /stats HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.route_path(), "/stats");
    }

    #[test]
    fn eof_before_a_request_is_a_clean_close() {
        assert!(matches!(parse(""), Err(ReadError::ConnectionClosed)));
    }

    #[test]
    fn eof_mid_request_is_malformed() {
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nHost"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nhalf"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn garbage_is_malformed_not_a_panic() {
        assert!(matches!(
            parse("how now\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / SMTP/1.1\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
    }

    #[test]
    fn conflicting_content_lengths_are_rejected() {
        // Two differing framings on one request is a desync hazard, not a
        // request (regression: the first value used to win silently).
        let result = parse("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\nbody");
        assert!(matches!(result, Err(ReadError::Malformed(_))));
        // Agreeing repeats are tolerated per RFC 9110 §8.6.
        let req =
            parse("POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody").unwrap();
        assert_eq!(req.body, b"body");
    }

    #[test]
    fn chunked_bodies_are_rejected_not_desynced() {
        let result =
            parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n4\r\nbody\r\n0\r\n\r\n");
        assert!(matches!(result, Err(ReadError::Malformed(_))));
    }

    #[test]
    fn oversized_bodies_are_rejected_before_allocation() {
        let result = parse("POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n");
        assert!(matches!(
            result,
            Err(ReadError::BodyTooLarge {
                declared: 999_999,
                limit: 1024
            })
        ));
    }

    #[test]
    fn oversized_heads_are_rejected_incrementally() {
        let mut parser = RequestParser::new(1024);
        parser.feed(b"GET / HTTP/1.1\r\n");
        let long_header = format!("X-Padding: {}\r\n", "y".repeat(MAX_HEAD_BYTES));
        parser.feed(long_header.as_bytes());
        assert!(matches!(parser.poll(), Err(ReadError::Malformed(_))));
    }

    #[test]
    fn byte_at_a_time_feeds_resume_mid_head_and_mid_body() {
        let raw = "POST /v1/engine HTTP/1.1\r\nContent-Length: 5\r\nX-Torn: yes\r\n\r\nhello";
        let mut parser = RequestParser::new(1024);
        for (i, byte) in raw.as_bytes().iter().enumerate() {
            assert!(
                parser.poll().unwrap().is_none(),
                "no request before byte {i}"
            );
            parser.feed(&[*byte]);
        }
        let req = parser.poll().unwrap().expect("last byte completes it");
        assert_eq!(req.method, "POST");
        assert_eq!(req.header("x-torn"), Some("yes"));
        assert_eq!(req.body, b"hello");
        assert!(parser.is_clean());
    }

    #[test]
    fn pipelined_requests_come_out_in_order_from_one_feed() {
        let raw = "GET /healthz HTTP/1.1\r\n\r\nPOST /v1/engine HTTP/1.1\r\nContent-Length: 2\r\n\r\nhiGET /stats HTTP/1.1\r\n\r\n";
        let mut parser = RequestParser::new(1024);
        parser.feed(raw.as_bytes());
        let first = parser.poll().unwrap().expect("first request");
        assert_eq!(first.path, "/healthz");
        let second = parser.poll().unwrap().expect("second request");
        assert_eq!(second.path, "/v1/engine");
        assert_eq!(second.body, b"hi");
        let third = parser.poll().unwrap().expect("third request");
        assert_eq!(third.path, "/stats");
        assert!(parser.poll().unwrap().is_none());
        assert!(parser.is_clean());
    }

    #[test]
    fn bare_lf_line_endings_parse_too() {
        let req = parse("GET /healthz HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
    }

    #[test]
    fn responses_have_the_expected_shape() {
        let mut out = Vec::new();
        write_json_response(&mut out, 200, b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Type: application/json\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }
}
