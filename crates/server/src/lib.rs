//! # grouptravel-server — the HTTP/JSON front-end of the serving engine
//!
//! One process boundary, one protocol: this crate serves the engine's
//! versioned wire protocol ([`grouptravel_engine::protocol`]) over a
//! hand-rolled **blocking HTTP/1.1** front-end — `std::net::TcpListener`,
//! an accept thread, and a fixed worker pool. No external dependencies, in
//! keeping with the workspace's offline `vendor/` policy; the async/epoll
//! evolution is a ROADMAP follow-up, not a prerequisite.
//!
//! ## Routes
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/engine` | One [`RequestEnvelope`] in, one [`ResponseEnvelope`] out |
//! | `GET /stats` | The envelope of `EngineRequest::Stats`, as a convenience |
//! | `GET /metrics` | Prometheus text exposition of the whole process (engine + HTTP series) |
//! | `GET /slowlog` | The engine's slow-request log, as JSON lines |
//! | `GET /healthz` | Liveness: `{"status":"ok","version":…,"protocol":1}` |
//!
//! Status codes carry only *transport and protocol* meaning: `400` for
//! bodies that are not a well-formed current-version envelope, `404`/`405`
//! for unknown routes, `413` for oversized bodies, `500` for an internal
//! serving failure. Application-level failures — unknown city, impossible
//! query, unknown session — travel *inside* a `200` response as typed
//! [`grouptravel_engine::EngineError`]s, exactly as in-process callers see
//! them, with the same stable numeric codes.
//!
//! ## Coalescing
//!
//! A cold build stampede — N concurrent requests for the same
//! `(catalog fingerprint, FcmConfig cache key)` — trains one model: the
//! engine's clustering cache is single-flight
//! ([`grouptravel_engine::LruCache::get_or_train`]), so the front-end
//! inherits coalescing on every route with no HTTP-level bookkeeping. The
//! `http_differential` suite proves it end to end over real sockets.

pub mod http;

use grouptravel_engine::{
    Engine, EngineRequest, EngineResponse, ProtocolError, RequestEnvelope, ResponseEnvelope,
    PROTOCOL_VERSION,
};
use grouptravel_obs::{Counter, Histogram, MetricsRegistry, PROMETHEUS_CONTENT_TYPE};
use http::ReadError;
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs of the HTTP front-end.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port — the tests'
    /// and benches' default).
    pub addr: String,
    /// Connection-handling worker threads (clamped to at least 1).
    pub worker_threads: usize,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// Read timeout per connection: bounds how long a worker can be held
    /// by a client that connects and sends nothing, or stalls mid-request.
    /// (Idle keep-alive sockets never park a worker — connections close
    /// after responding unless the next request is already pipelined.)
    pub keep_alive_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            worker_threads: std::thread::available_parallelism()
                .map_or(4, std::num::NonZeroUsize::get)
                .min(8),
            max_body_bytes: 64 * 1024 * 1024,
            keep_alive_timeout: Duration::from_secs(5),
        }
    }
}

/// The route labels `gt_http_request_seconds` is partitioned by. Unknown
/// paths collapse onto `"other"` so scrapes cannot be label-bombed.
const ROUTE_LABELS: [&str; 6] = [
    "/v1/engine",
    "/stats",
    "/metrics",
    "/slowlog",
    "/healthz",
    "other",
];

fn route_label(path: &str) -> &'static str {
    ROUTE_LABELS
        .iter()
        .find(|&&label| label == path)
        .copied()
        .unwrap_or("other")
}

/// The HTTP layer's own series, registered into the engine's metric
/// registry at startup so one `GET /metrics` scrape covers the process.
struct ServerMetrics {
    /// Per-route request latency, aligned with [`ROUTE_LABELS`].
    routes: [Arc<Histogram>; ROUTE_LABELS.len()],
    /// Connections accepted.
    connections: Arc<Counter>,
    /// Extra requests served on an already-open connection (pipelining).
    keepalive_reuses: Arc<Counter>,
    /// Connections reclaimed by the read timeout.
    read_timeouts: Arc<Counter>,
}

impl ServerMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        let routes = ROUTE_LABELS.map(|label| {
            registry.histogram(
                "gt_http_request_seconds",
                "HTTP request latency by route.",
                &[("route", label)],
            )
        });
        Self {
            routes,
            connections: registry.counter(
                "gt_http_connections_total",
                "TCP connections accepted.",
                &[],
            ),
            keepalive_reuses: registry.counter(
                "gt_http_keepalive_reuses_total",
                "Pipelined requests served on kept-alive connections.",
                &[],
            ),
            read_timeouts: registry.counter(
                "gt_http_read_timeouts_total",
                "Connections reclaimed by the read timeout.",
                &[],
            ),
        }
    }

    fn for_path(&self, path: &str) -> &Histogram {
        let label = route_label(path);
        let index = ROUTE_LABELS
            .iter()
            .position(|&l| l == label)
            .expect("route_label returns a known label");
        &self.routes[index]
    }
}

/// A running front-end: the bound address plus the handles needed to shut
/// it down. Dropping it stops the server.
pub struct RunningServer {
    engine: Arc<Engine>,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl RunningServer {
    /// Binds `config.addr`, spawns the accept loop and worker pool, and
    /// returns immediately; the server serves until [`RunningServer::stop`]
    /// or drop.
    ///
    /// # Errors
    /// Fails when the address cannot be bound.
    pub fn start(engine: Arc<Engine>, config: ServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));
        let metrics = Arc::new(ServerMetrics::new(engine.metrics_registry()));

        let workers = config.worker_threads.max(1);
        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let receiver = Arc::clone(&receiver);
            let engine = Arc::clone(&engine);
            let metrics = Arc::clone(&metrics);
            let config = config.clone();
            worker_handles.push(std::thread::spawn(move || loop {
                // Holding the lock only for the recv keeps the pool a fair
                // queue; a closed channel (accept loop gone) ends the worker.
                let next = receiver.lock().expect("connection queue poisoned").recv();
                match next {
                    Ok(stream) => serve_connection(&engine, &metrics, stream, &config),
                    Err(_) => break,
                }
            }));
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    // A send can only fail after shutdown dropped the
                    // workers; the accept loop is about to exit anyway.
                    if sender.send(stream).is_err() {
                        break;
                    }
                }
            }
            // Dropping the sender drains the workers.
        });

        Ok(Self {
            engine,
            local_addr,
            shutdown,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The address the server actually bound (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine this server fronts.
    #[must_use]
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stops accepting, drains the workers, and joins every thread.
    pub fn stop(mut self) {
        self.stop_in_place();
    }

    fn stop_in_place(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept`; a throwaway connection wakes
        // it so it can observe the flag.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop_in_place();
    }
}

/// Serves one connection: the first request, then any **pipelined**
/// requests already buffered behind it. A connection with no buffered next
/// request is closed after responding rather than parked: with a fixed
/// worker pool, letting idle keep-alive sockets hold workers would let a
/// handful of silent clients starve every new connection for the duration
/// of the read timeout — closing is always legal for an HTTP/1.1 server,
/// and well-behaved clients reconnect. The read timeout still bounds how
/// long a worker can be held by a client that connects and sends nothing
/// (or stalls mid-request).
fn serve_connection(
    engine: &Engine,
    metrics: &ServerMetrics,
    stream: TcpStream,
    config: &ServerConfig,
) {
    metrics.connections.inc();
    let _ = stream.set_read_timeout(Some(config.keep_alive_timeout));
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut served: u64 = 0;
    loop {
        match http::read_request(&mut reader, config.max_body_bytes) {
            Ok(request) => {
                if served > 0 {
                    metrics.keepalive_reuses.inc();
                }
                served += 1;
                // Close unless the next pipelined request is already here.
                let close = request.wants_close() || reader.buffer().is_empty();
                let start = std::time::Instant::now();
                let (status, content_type, body) = route(engine, &request);
                metrics
                    .for_path(&request.path)
                    .record_duration(start.elapsed());
                if http::write_response(&mut writer, status, content_type, &body, close).is_err() {
                    return;
                }
                if close {
                    return;
                }
            }
            Err(ReadError::ConnectionClosed) => return,
            Err(ReadError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle keep-alive connection: reclaim the worker.
                metrics.read_timeouts.inc();
                return;
            }
            Err(ReadError::Io(_)) => return,
            Err(ReadError::BodyTooLarge { declared, limit }) => {
                let error = ProtocolError::new(
                    ProtocolError::BODY_TOO_LARGE,
                    format!("request body of {declared} bytes exceeds the {limit}-byte limit"),
                );
                let _ = http::write_json_response(&mut writer, 413, &error_body(error), true);
                return;
            }
            Err(ReadError::Malformed(why)) => {
                let error = ProtocolError::new(
                    ProtocolError::MALFORMED_REQUEST,
                    format!("malformed HTTP request: {why}"),
                );
                let _ = http::write_json_response(&mut writer, 400, &error_body(error), true);
                return;
            }
        }
    }
}

/// Renders a protocol error as a wire response envelope.
fn error_body(error: ProtocolError) -> String {
    serde_json::to_string(&ResponseEnvelope::new(EngineResponse::Error { error }))
        .expect("response envelopes always serialize")
}

/// Routes one parsed request to `(status, content type, body)`.
fn route(engine: &Engine, request: &http::Request) -> (u16, &'static str, String) {
    const JSON: &str = "application/json";
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/engine") => {
            let body = match std::str::from_utf8(&request.body) {
                Ok(text) => text,
                Err(_) => {
                    return (
                        400,
                        JSON,
                        error_body(ProtocolError::new(
                            ProtocolError::MALFORMED_REQUEST,
                            "request body is not UTF-8",
                        )),
                    )
                }
            };
            let envelope: RequestEnvelope = match serde_json::from_str(body) {
                Ok(envelope) => envelope,
                Err(e) => {
                    return (
                        400,
                        JSON,
                        error_body(ProtocolError::new(
                            ProtocolError::MALFORMED_REQUEST,
                            format!("body is not a request envelope: {e}"),
                        )),
                    )
                }
            };
            let response = engine.dispatch_envelope(envelope);
            // Protocol-level rejections (today: unsupported version) are
            // client errors; everything else — including per-request
            // engine errors riding inside the payload — is a served 200.
            let status = match response.response.protocol_error() {
                Some(_) => 400,
                None => 200,
            };
            (
                status,
                JSON,
                serde_json::to_string(&response).expect("response envelopes always serialize"),
            )
        }
        ("GET", "/stats") => {
            let response = engine.dispatch(EngineRequest::Stats);
            (
                200,
                JSON,
                serde_json::to_string(&ResponseEnvelope::new(response))
                    .expect("response envelopes always serialize"),
            )
        }
        ("GET", "/metrics") => (
            200,
            PROMETHEUS_CONTENT_TYPE,
            engine.metrics_registry().render_prometheus(),
        ),
        ("GET", "/slowlog") => (200, "application/x-ndjson", engine.slow_log().json_lines()),
        ("GET", "/healthz") => (
            200,
            JSON,
            format!(
                "{{\"status\":\"ok\",\"version\":\"{}\",\"protocol\":{PROTOCOL_VERSION}}}",
                env!("CARGO_PKG_VERSION"),
            ),
        ),
        (_, "/v1/engine" | "/stats" | "/metrics" | "/slowlog" | "/healthz") => (
            405,
            JSON,
            error_body(ProtocolError::new(
                ProtocolError::METHOD_NOT_ALLOWED,
                format!("{} is not valid for {}", request.method, request.path),
            )),
        ),
        (_, path) => (
            404,
            JSON,
            error_body(ProtocolError::new(
                ProtocolError::NOT_FOUND,
                format!("no route for `{path}`"),
            )),
        ),
    }
}

pub mod client {
    //! A minimal blocking HTTP client for the wire protocol — enough for
    //! the differential tests, the throughput bench, and the examples to
    //! drive a real server over real sockets without external crates.

    use grouptravel_engine::{EngineRequest, EngineResponse, RequestEnvelope, ResponseEnvelope};
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::{SocketAddr, TcpStream};

    /// A client bound to one server address. Each call opens a fresh
    /// connection (`Connection: close`), which keeps the client trivially
    /// correct; connection reuse is a server-side concern the keep-alive
    /// path already covers.
    #[derive(Debug, Clone)]
    pub struct EngineClient {
        addr: SocketAddr,
    }

    /// A transport or decode failure on the client side.
    #[derive(Debug)]
    pub struct ClientError(pub String);

    impl std::fmt::Display for ClientError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "client error: {}", self.0)
        }
    }

    impl std::error::Error for ClientError {}

    impl From<std::io::Error> for ClientError {
        fn from(e: std::io::Error) -> Self {
            ClientError(e.to_string())
        }
    }

    impl EngineClient {
        /// A client for the server at `addr`.
        #[must_use]
        pub fn new(addr: SocketAddr) -> Self {
            Self { addr }
        }

        /// Sends one protocol request and decodes the response envelope.
        ///
        /// # Errors
        /// Fails on transport errors or a body that is not a response
        /// envelope. Non-2xx statuses are *not* errors: the envelope still
        /// carries the typed answer (e.g. a protocol error).
        pub fn request(&self, request: EngineRequest) -> Result<EngineResponse, ClientError> {
            let body = serde_json::to_string(&RequestEnvelope::new(request))
                .map_err(|e| ClientError(e.to_string()))?;
            let (_, text) = self.http("POST", "/v1/engine", Some(&body))?;
            let envelope: ResponseEnvelope =
                serde_json::from_str(&text).map_err(|e| ClientError(e.to_string()))?;
            Ok(envelope.response)
        }

        /// One raw HTTP exchange: `(status, body)`.
        ///
        /// # Errors
        /// Fails on connect/transport errors or a malformed response head.
        pub fn http(
            &self,
            method: &str,
            path: &str,
            body: Option<&str>,
        ) -> Result<(u16, String), ClientError> {
            let mut stream = TcpStream::connect(self.addr)?;
            let body = body.unwrap_or("");
            write!(
                stream,
                "{method} {path} HTTP/1.1\r\nHost: {}\r\nConnection: close\r\n\
                 Content-Type: application/json\r\nContent-Length: {}\r\n\r\n{body}",
                self.addr,
                body.len(),
            )?;
            stream.flush()?;

            let mut reader = BufReader::new(stream);
            let mut status_line = String::new();
            reader.read_line(&mut status_line)?;
            let status: u16 = status_line
                .split(' ')
                .nth(1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ClientError(format!("bad status line `{status_line}`")))?;

            let mut content_length: Option<usize> = None;
            loop {
                let mut line = String::new();
                reader.read_line(&mut line)?;
                let line = line.trim_end();
                if line.is_empty() {
                    break;
                }
                if let Some((name, value)) = line.split_once(':') {
                    if name.trim().eq_ignore_ascii_case("content-length") {
                        content_length = value.trim().parse().ok();
                    }
                }
            }
            let mut body = match content_length {
                Some(n) => {
                    let mut buf = vec![0u8; n];
                    reader.read_exact(&mut buf)?;
                    buf
                }
                None => {
                    let mut buf = Vec::new();
                    reader.read_to_end(&mut buf)?;
                    buf
                }
            };
            // Tolerate a trailing CRLF from servers that over-send.
            while body.last() == Some(&b'\n') || body.last() == Some(&b'\r') {
                body.pop();
            }
            let text =
                String::from_utf8(body).map_err(|_| ClientError("non-UTF-8 body".to_string()))?;
            Ok((status, text))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouptravel_engine::EngineConfig;

    fn running() -> RunningServer {
        RunningServer::start(
            Arc::new(Engine::new(EngineConfig::fast())),
            ServerConfig {
                worker_threads: 2,
                ..ServerConfig::default()
            },
        )
        .expect("bind an ephemeral port")
    }

    #[test]
    fn healthz_and_unknown_routes_answer_typed() {
        let server = running();
        let client = client::EngineClient::new(server.addr());

        let (status, body) = client.http("GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"ok\""));

        let (status, body) = client.http("GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        assert!(body.contains(&format!("\"code\":{}", ProtocolError::NOT_FOUND)));

        let (status, _) = client.http("DELETE", "/healthz", None).unwrap();
        assert_eq!(status, 405);
        server.stop();
    }

    #[test]
    fn malformed_bodies_and_wrong_versions_are_400s() {
        let server = running();
        let client = client::EngineClient::new(server.addr());

        let (status, body) = client
            .http("POST", "/v1/engine", Some("this is not json"))
            .unwrap();
        assert_eq!(status, 400);
        assert!(body.contains(&format!("\"code\":{}", ProtocolError::MALFORMED_REQUEST)));

        let wrong_version = "{\"v\": 99, \"request\": \"Stats\"}";
        let (status, body) = client
            .http("POST", "/v1/engine", Some(wrong_version))
            .unwrap();
        assert_eq!(status, 400);
        assert!(body.contains(&format!("\"code\":{}", ProtocolError::UNSUPPORTED_VERSION)));
        server.stop();
    }

    #[test]
    fn stats_round_trips_through_the_wire() {
        let server = running();
        let client = client::EngineClient::new(server.addr());
        let response = client.request(EngineRequest::Stats).unwrap();
        match response {
            EngineResponse::Stats { stats } => {
                assert_eq!(stats.requests, 0);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        let (status, body) = client.http("GET", "/stats", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"requests\""));
        server.stop();
    }
}
