//! # grouptravel-server — the HTTP/JSON front-end of the serving engine
//!
//! One process boundary, one protocol: this crate serves the engine's
//! versioned wire protocol ([`grouptravel_engine::protocol`]) over a
//! hand-rolled HTTP/1.1 front-end with **two interchangeable backends**:
//!
//! - [`Backend::Reactor`] (the default on Linux): a single-threaded
//!   `epoll` event loop owning every socket — nonblocking accept,
//!   per-connection read/parse/write state machines that resume across
//!   readiness events, a timer wheel for idle keep-alive reaping, and a
//!   small worker pool that runs engine work off the loop. Connection
//!   count is decoupled from thread count: 10k idle keep-alive sockets
//!   cost 10k fds and one thread, not 10k threads. See [`reactor`].
//! - [`Backend::Blocking`] (the portability fallback, and the default off
//!   Linux): `std::net::TcpListener`, an accept thread, and a fixed worker
//!   pool — one worker per in-flight connection.
//!
//! Both backends parse with the same incremental [`http::RequestParser`]
//! and route through the same [`route`] function, so they cannot disagree
//! about behavior — the `http_differential` suite pins them byte-identical
//! over real sockets. No external dependencies, in keeping with the
//! workspace's offline `vendor/` policy (the reactor declares its four
//! syscalls against the libc std already links).
//!
//! ## Routes
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /v1/engine` | One [`RequestEnvelope`] in, one [`ResponseEnvelope`] out |
//! | `GET /stats` | The envelope of `EngineRequest::Stats`, as a convenience |
//! | `GET /metrics` | Prometheus text exposition of the whole process (engine + HTTP series) |
//! | `GET /slowlog` | The engine's slow-request log, as JSON lines |
//! | `GET /healthz` | Liveness: `{"status":"ok","version":…,"protocol":1,"worker_threads":…,"train_threads":…}` |
//!
//! Query strings are cut before routing and metric labeling:
//! `GET /healthz?probe=1` is `/healthz`, not a 404.
//!
//! Status codes carry only *transport and protocol* meaning: `400` for
//! bodies that are not a well-formed current-version envelope, `404`/`405`
//! for unknown routes, `413` for oversized bodies, `500` for an internal
//! serving failure. Application-level failures — unknown city, impossible
//! query, unknown session — travel *inside* a `200` response as typed
//! [`grouptravel_engine::EngineError`]s, exactly as in-process callers see
//! them, with the same stable numeric codes.
//!
//! ## Coalescing
//!
//! A cold build stampede — N concurrent requests for the same
//! `(catalog fingerprint, FcmConfig cache key)` — trains one model: the
//! engine's clustering cache is single-flight
//! ([`grouptravel_engine::LruCache::get_or_train`]), so the front-end
//! inherits coalescing on every route with no HTTP-level bookkeeping. The
//! `http_differential` suite proves it end to end over real sockets.

pub mod http;
#[cfg(target_os = "linux")]
pub mod reactor;

use grouptravel_engine::binary::{self, BinError, BINARY_CONTENT_TYPE};
use grouptravel_engine::{
    Engine, EngineRequest, EngineResponse, ProtocolError, RequestEnvelope, ResponseEnvelope,
    PROTOCOL_VERSION,
};
use grouptravel_obs::{Counter, Histogram, MetricsRegistry, PROMETHEUS_CONTENT_TYPE};
use http::{ReadError, RequestParser};
use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Which front-end implementation serves the sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The epoll event loop (Linux only; elsewhere `start` silently uses
    /// `Blocking`, the documented portability fallback).
    Reactor,
    /// The accept-thread + worker-pool design: simple, portable, but one
    /// parked worker per in-flight connection.
    Blocking,
}

impl Default for Backend {
    fn default() -> Self {
        if cfg!(target_os = "linux") {
            Backend::Reactor
        } else {
            Backend::Blocking
        }
    }
}

/// Tuning knobs of the HTTP front-end.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`127.0.0.1:0` picks an ephemeral port — the tests'
    /// and benches' default).
    pub addr: String,
    /// Worker threads (clamped to at least 1). Under the reactor these
    /// only run engine work; under the blocking backend they own whole
    /// connections.
    pub worker_threads: usize,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// How long a connection may sit idle (or stalled mid-request /
    /// mid-response) before it is reclaimed.
    pub keep_alive_timeout: Duration,
    /// Which front-end serves the sockets.
    pub backend: Backend,
    /// Connection cap for the reactor: accepts beyond it are shed
    /// immediately so established connections keep their service level.
    /// (The blocking backend is implicitly capped by its worker count.)
    pub max_connections: usize,
    /// Test knob: cap bytes written per readiness event so partial-write
    /// resumption is exercised deterministically. `None` (the default)
    /// writes as much as the socket accepts.
    pub write_chunk_limit: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            worker_threads: std::thread::available_parallelism()
                .map_or(4, std::num::NonZeroUsize::get)
                .min(8),
            max_body_bytes: 64 * 1024 * 1024,
            keep_alive_timeout: Duration::from_secs(5),
            backend: Backend::default(),
            max_connections: 16_384,
            write_chunk_limit: None,
        }
    }
}

/// A wire encoding of the engine protocol: JSON (the default and the
/// compatibility baseline) or `GTBF1` binary frames
/// ([`grouptravel_engine::binary`]). Negotiated per request on
/// `POST /v1/engine`: the request body's encoding follows `Content-Type`,
/// the response's follows `Accept` (falling back to mirroring the request).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// `application/json` — text envelopes, bit-stable across releases.
    #[default]
    Json,
    /// `application/x-gtbf` — versioned `GTBF1` binary frames.
    Binary,
}

impl WireFormat {
    /// The HTTP content type that selects this encoding.
    #[must_use]
    pub fn content_type(self) -> &'static str {
        match self {
            WireFormat::Json => "application/json",
            WireFormat::Binary => BINARY_CONTENT_TYPE,
        }
    }

    /// The metric label value (`format="…"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        FORMAT_LABELS[self.index()]
    }

    fn index(self) -> usize {
        match self {
            WireFormat::Json => 0,
            WireFormat::Binary => 1,
        }
    }
}

/// The `format` label values, aligned with [`WireFormat::index`].
const FORMAT_LABELS: [&str; 2] = ["json", "binary"];

/// The `dir` label values of `gt_http_bytes_total`.
const DIR_LABELS: [&str; 2] = ["in", "out"];

/// The wire format of a request body: binary iff `Content-Type` says so,
/// JSON otherwise (including when the header is absent).
fn request_wire_format(request: &http::Request) -> WireFormat {
    match request.header("content-type") {
        Some(value) if value.contains(BINARY_CONTENT_TYPE) => WireFormat::Binary,
        _ => WireFormat::Json,
    }
}

/// The wire format of a response: whatever `Accept` asks for, else the
/// request's own format (a binary caller gets a binary answer without
/// sending `Accept`).
fn response_wire_format(request: &http::Request, request_format: WireFormat) -> WireFormat {
    match request.header("accept") {
        Some(value) if value.contains(BINARY_CONTENT_TYPE) => WireFormat::Binary,
        Some(value) if value.contains("application/json") => WireFormat::Json,
        _ => request_format,
    }
}

/// What [`route`] decided about one request: the status line and content
/// type to send, plus the negotiated formats the metrics are labeled by.
/// The response body itself lands in the caller-provided buffer.
struct Routed {
    status: u16,
    content_type: &'static str,
    request_format: WireFormat,
    response_format: WireFormat,
}

impl Routed {
    /// A JSON-in/JSON-out routing outcome (every route except the
    /// negotiated `/v1/engine`).
    fn json(status: u16, content_type: &'static str) -> Self {
        Self {
            status,
            content_type,
            request_format: WireFormat::Json,
            response_format: WireFormat::Json,
        }
    }
}

/// The route labels `gt_http_request_seconds` is partitioned by. Unknown
/// paths collapse onto `"other"` so scrapes cannot be label-bombed.
const ROUTE_LABELS: [&str; 6] = [
    "/v1/engine",
    "/stats",
    "/metrics",
    "/slowlog",
    "/healthz",
    "other",
];

/// Maps a request path to its metric label. The query string never
/// changes the label: `/stats?pretty` is `/stats`, not `other`.
fn route_label(path: &str) -> &'static str {
    let path = path.split('?').next().unwrap_or(path);
    ROUTE_LABELS
        .iter()
        .find(|&&label| label == path)
        .copied()
        .unwrap_or("other")
}

/// The HTTP layer's own series, registered into the engine's metric
/// registry at startup so one `GET /metrics` scrape covers the process.
struct ServerMetrics {
    /// Per-(route, response format) request latency, aligned with
    /// [`ROUTE_LABELS`] × [`FORMAT_LABELS`].
    routes: [[Arc<Histogram>; FORMAT_LABELS.len()]; ROUTE_LABELS.len()],
    /// Payload bytes by direction and wire format, aligned with
    /// [`DIR_LABELS`] × [`FORMAT_LABELS`]: `in` counts request bodies by
    /// the request's format, `out` counts response bodies by the
    /// response's. Only routed requests count — a request the parser
    /// rejected never had a negotiated format.
    bytes: [[Arc<Counter>; FORMAT_LABELS.len()]; DIR_LABELS.len()],
    /// Connections accepted.
    connections: Arc<Counter>,
    /// Extra requests served on an already-open connection (keep-alive
    /// reuse, pipelined or not).
    keepalive_reuses: Arc<Counter>,
    /// Connections reclaimed by the idle/stall timeout.
    read_timeouts: Arc<Counter>,
}

impl ServerMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        let routes = ROUTE_LABELS.map(|route| {
            FORMAT_LABELS.map(|format| {
                registry.histogram(
                    "gt_http_request_seconds",
                    "HTTP request latency by route and response wire format.",
                    &[("route", route), ("format", format)],
                )
            })
        });
        let bytes = DIR_LABELS.map(|dir| {
            FORMAT_LABELS.map(|format| {
                registry.counter(
                    "gt_http_bytes_total",
                    "HTTP payload bytes by direction and wire format.",
                    &[("dir", dir), ("format", format)],
                )
            })
        });
        Self {
            routes,
            bytes,
            connections: registry.counter(
                "gt_http_connections_total",
                "TCP connections accepted.",
                &[],
            ),
            keepalive_reuses: registry.counter(
                "gt_http_keepalive_reuses_total",
                "Requests served on an already-open (kept-alive) connection.",
                &[],
            ),
            read_timeouts: registry.counter(
                "gt_http_read_timeouts_total",
                "Connections reclaimed by the idle/stall timeout.",
                &[],
            ),
        }
    }

    /// Records one routed request: latency under the response format,
    /// request bytes under the request format, response bytes under the
    /// response format. Both backends call exactly this, so the series
    /// cannot diverge.
    fn record(
        &self,
        path: &str,
        routed: &Routed,
        request_bytes: usize,
        response_bytes: usize,
        elapsed: Duration,
    ) {
        let label = route_label(path);
        let route = ROUTE_LABELS
            .iter()
            .position(|&l| l == label)
            .expect("route_label returns a known label");
        self.routes[route][routed.response_format.index()].record_duration(elapsed);
        self.bytes[0][routed.request_format.index()].add(request_bytes as u64);
        self.bytes[1][routed.response_format.index()].add(response_bytes as u64);
    }
}

/// The running backend's shutdown handles.
enum BackendHandle {
    Blocking {
        shutdown: Arc<AtomicBool>,
        accept_handle: Option<JoinHandle<()>>,
        worker_handles: Vec<JoinHandle<()>>,
    },
    #[cfg(target_os = "linux")]
    Reactor(reactor::ReactorHandle),
}

/// A running front-end: the bound address plus the handles needed to shut
/// it down. Dropping it stops the server.
pub struct RunningServer {
    engine: Arc<Engine>,
    local_addr: SocketAddr,
    inner: BackendHandle,
}

impl RunningServer {
    /// Binds `config.addr`, spawns the configured backend, and returns
    /// immediately; the server serves until [`RunningServer::stop`] or
    /// drop. A `Backend::Reactor` request on a non-Linux platform falls
    /// back to the blocking backend.
    ///
    /// # Errors
    /// Fails when the address cannot be bound.
    pub fn start(engine: Arc<Engine>, config: ServerConfig) -> io::Result<Self> {
        let metrics = Arc::new(ServerMetrics::new(engine.metrics_registry()));
        #[cfg(target_os = "linux")]
        if config.backend == Backend::Reactor {
            let (local_addr, handle) =
                reactor::start(Arc::clone(&engine), Arc::clone(&metrics), config)?;
            return Ok(Self {
                engine,
                local_addr,
                inner: BackendHandle::Reactor(handle),
            });
        }
        Self::start_blocking(engine, metrics, config)
    }

    fn start_blocking(
        engine: Arc<Engine>,
        metrics: Arc<ServerMetrics>,
        config: ServerConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));

        let (sender, receiver) = mpsc::channel::<TcpStream>();
        let receiver = Arc::new(Mutex::new(receiver));

        let workers = config.worker_threads.max(1);
        let mut worker_handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let receiver = Arc::clone(&receiver);
            let engine = Arc::clone(&engine);
            let metrics = Arc::clone(&metrics);
            let config = config.clone();
            worker_handles.push(std::thread::spawn(move || loop {
                // Holding the lock only for the recv keeps the pool a fair
                // queue; a closed channel (accept loop gone) ends the worker.
                let next = receiver.lock().expect("connection queue poisoned").recv();
                match next {
                    Ok(stream) => serve_connection(&engine, &metrics, stream, &config),
                    Err(_) => break,
                }
            }));
        }

        let accept_shutdown = Arc::clone(&shutdown);
        let accept_handle = std::thread::spawn(move || {
            for stream in listener.incoming() {
                if accept_shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if let Ok(stream) = stream {
                    // A send can only fail after shutdown dropped the
                    // workers; the accept loop is about to exit anyway.
                    if sender.send(stream).is_err() {
                        break;
                    }
                }
            }
            // Dropping the sender drains the workers.
        });

        Ok(Self {
            engine,
            local_addr,
            inner: BackendHandle::Blocking {
                shutdown,
                accept_handle: Some(accept_handle),
                worker_handles,
            },
        })
    }

    /// The address the server actually bound (resolves ephemeral ports).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine this server fronts.
    #[must_use]
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Stops accepting, drains the workers, and joins every thread.
    pub fn stop(mut self) {
        self.stop_in_place();
    }

    fn stop_in_place(&mut self) {
        match &mut self.inner {
            BackendHandle::Blocking {
                shutdown,
                accept_handle,
                worker_handles,
            } => {
                shutdown.store(true, Ordering::SeqCst);
                // The accept loop blocks in `accept`; a throwaway
                // connection wakes it so it can observe the flag.
                let _ = TcpStream::connect(self.local_addr);
                if let Some(handle) = accept_handle.take() {
                    let _ = handle.join();
                }
                for handle in worker_handles.drain(..) {
                    let _ = handle.join();
                }
            }
            #[cfg(target_os = "linux")]
            BackendHandle::Reactor(handle) => handle.stop(),
        }
    }
}

impl Drop for RunningServer {
    fn drop(&mut self) {
        self.stop_in_place();
    }
}

/// Serves one connection on the blocking backend: requests are read
/// through a persistent [`RequestParser`] (so pipelined bytes survive
/// between requests) and answered in order. A connection with no buffered
/// next request is closed after responding rather than parked: with a
/// fixed worker pool, letting idle keep-alive sockets hold workers would
/// let a handful of silent clients starve every new connection for the
/// duration of the read timeout — closing is always legal for an HTTP/1.1
/// server, and well-behaved clients reconnect. (The reactor backend has no
/// such constraint and parks idle connections for the full keep-alive
/// timeout.) The read timeout still bounds how long a worker can be held
/// by a client that connects and sends nothing, or stalls mid-request.
fn serve_connection(
    engine: &Engine,
    metrics: &ServerMetrics,
    stream: TcpStream,
    config: &ServerConfig,
) {
    metrics.connections.inc();
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(config.keep_alive_timeout));
    let mut writer = match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut parser = RequestParser::new(config.max_body_bytes);
    // One response-body buffer for the connection's lifetime: `route`
    // serializes into it in place, so steady-state keep-alive traffic
    // allocates no per-request body.
    let mut body = Vec::new();
    let mut served: u64 = 0;
    loop {
        match http::read_request_with(&mut parser, &mut reader) {
            Ok(request) => {
                if served > 0 {
                    metrics.keepalive_reuses.inc();
                }
                served += 1;
                // Close unless the next pipelined request is already here.
                let close =
                    request.wants_close() || (parser.buffered() == 0 && reader.buffer().is_empty());
                let start = std::time::Instant::now();
                let routed = route(engine, &request, &mut body);
                metrics.record(
                    request.route_path(),
                    &routed,
                    request.body.len(),
                    body.len(),
                    start.elapsed(),
                );
                if http::write_response(
                    &mut writer,
                    routed.status,
                    routed.content_type,
                    &body,
                    close,
                )
                .is_err()
                {
                    return;
                }
                if close {
                    return;
                }
            }
            Err(ReadError::ConnectionClosed) => return,
            Err(ReadError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Idle keep-alive connection: reclaim the worker.
                metrics.read_timeouts.inc();
                return;
            }
            Err(ReadError::Io(_)) => return,
            Err(ReadError::BodyTooLarge { declared, limit }) => {
                let error = ProtocolError::new(
                    ProtocolError::BODY_TOO_LARGE,
                    format!("request body of {declared} bytes exceeds the {limit}-byte limit"),
                );
                let _ = http::write_json_response(&mut writer, 413, &error_body(error), true);
                return;
            }
            Err(ReadError::Malformed(why)) => {
                let error = ProtocolError::new(
                    ProtocolError::MALFORMED_REQUEST,
                    format!("malformed HTTP request: {why}"),
                );
                let _ = http::write_json_response(&mut writer, 400, &error_body(error), true);
                return;
            }
        }
    }
}

/// Renders a protocol error as a JSON wire response envelope — for
/// transport-level failures (malformed HTTP framing, oversized bodies)
/// that happen *before* content-type negotiation could run.
fn error_body(error: ProtocolError) -> Vec<u8> {
    serde_json::to_vec(&ResponseEnvelope::new(EngineResponse::Error { error }))
        .expect("response envelopes always serialize")
}

/// Serializes a response envelope into `body` in the negotiated format.
fn write_envelope(format: WireFormat, envelope: &ResponseEnvelope, body: &mut Vec<u8>) {
    match format {
        WireFormat::Json => {
            serde_json::to_writer(body, envelope).expect("response envelopes always serialize")
        }
        WireFormat::Binary => binary::encode_into(envelope, body),
    }
}

/// Decodes a request envelope from a raw body in the request's format.
/// Binary failures map onto the protocol's stable error codes: an
/// unsupported *frame* version is `UNSUPPORTED_VERSION`, every other
/// decode failure is `MALFORMED_REQUEST` — same taxonomy as JSON.
fn decode_envelope(format: WireFormat, body: &[u8]) -> Result<RequestEnvelope, ProtocolError> {
    match format {
        WireFormat::Json => serde_json::from_slice(body).map_err(|e| {
            ProtocolError::new(
                ProtocolError::MALFORMED_REQUEST,
                format!("body is not a request envelope: {e}"),
            )
        }),
        WireFormat::Binary => binary::decode(body).map_err(|e| match e {
            BinError::UnsupportedVersion(v) => ProtocolError::new(
                ProtocolError::UNSUPPORTED_VERSION,
                format!("unsupported GTBF frame version {v}"),
            ),
            other => ProtocolError::new(
                ProtocolError::MALFORMED_REQUEST,
                format!("body is not a GTBF request envelope: {other}"),
            ),
        }),
    }
}

/// Routes one parsed request, serializing the response body into `body`
/// (cleared first; callers reuse the buffer across requests). Both
/// backends call exactly this, so they cannot diverge. Query strings do
/// not participate in matching: `/healthz?probe=1` is `/healthz`.
fn route(engine: &Engine, request: &http::Request, body: &mut Vec<u8>) -> Routed {
    use std::io::Write;
    const JSON: &str = "application/json";
    body.clear();
    match (request.method.as_str(), request.route_path()) {
        ("POST", "/v1/engine") => {
            let request_format = request_wire_format(request);
            let response_format = response_wire_format(request, request_format);
            let routed = |status| Routed {
                status,
                content_type: response_format.content_type(),
                request_format,
                response_format,
            };
            let envelope = match decode_envelope(request_format, &request.body) {
                Ok(envelope) => envelope,
                Err(error) => {
                    let rejection = ResponseEnvelope::new(EngineResponse::Error { error });
                    write_envelope(response_format, &rejection, body);
                    return routed(400);
                }
            };
            let response = engine.dispatch_envelope(envelope);
            // Protocol-level rejections (today: unsupported version) are
            // client errors; everything else — including per-request
            // engine errors riding inside the payload — is a served 200.
            let status = match response.response.protocol_error() {
                Some(_) => 400,
                None => 200,
            };
            write_envelope(response_format, &response, body);
            routed(status)
        }
        ("GET", "/stats") => {
            let response = engine.dispatch(EngineRequest::Stats);
            serde_json::to_writer(body, &ResponseEnvelope::new(response))
                .expect("response envelopes always serialize");
            Routed::json(200, JSON)
        }
        ("GET", "/metrics") => {
            body.extend_from_slice(engine.metrics_registry().render_prometheus().as_bytes());
            Routed::json(200, PROMETHEUS_CONTENT_TYPE)
        }
        ("GET", "/slowlog") => {
            body.extend_from_slice(engine.slow_log().json_lines().as_bytes());
            Routed::json(200, "application/x-ndjson")
        }
        ("GET", "/healthz") => {
            let _ = write!(
                body,
                "{{\"status\":\"ok\",\"version\":\"{}\",\"protocol\":{PROTOCOL_VERSION},\
                 \"worker_threads\":{},\"train_threads\":{}}}",
                env!("CARGO_PKG_VERSION"),
                engine.worker_threads(),
                engine.train_threads(),
            );
            Routed::json(200, JSON)
        }
        (_, "/v1/engine" | "/stats" | "/metrics" | "/slowlog" | "/healthz") => {
            body.extend_from_slice(&error_body(ProtocolError::new(
                ProtocolError::METHOD_NOT_ALLOWED,
                format!(
                    "{} is not valid for {}",
                    request.method,
                    request.route_path()
                ),
            )));
            Routed::json(405, JSON)
        }
        (_, path) => {
            body.extend_from_slice(&error_body(ProtocolError::new(
                ProtocolError::NOT_FOUND,
                format!("no route for `{path}`"),
            )));
            Routed::json(404, JSON)
        }
    }
}

pub mod client {
    //! A blocking HTTP client for the wire protocol with a keep-alive
    //! connection pool — enough for the differential tests, the throughput
    //! bench, and the examples to drive a real server over real sockets
    //! without external crates.

    use crate::WireFormat;
    use grouptravel_engine::binary::{self, BINARY_CONTENT_TYPE};
    use grouptravel_engine::{
        CommandRequest, CommandResponse, EngineRequest, EngineResponse, GroupProfile,
        PackageRequest, PackageResponse, RequestEnvelope, ResponseEnvelope, PROTOCOL_VERSION,
    };
    use std::io::{BufRead, BufReader, Read, Write};
    use std::net::{SocketAddr, TcpStream};
    use std::sync::{Arc, Mutex};
    use std::time::Duration;

    /// How long a single response may take before the client gives up.
    /// Generous: cold registrations train an LDA model synchronously.
    const RESPONSE_TIMEOUT: Duration = Duration::from_secs(120);

    /// Idle connections kept per client (clones share the pool).
    const MAX_IDLE: usize = 8;

    /// A client bound to one server address, holding a bounded pool of
    /// kept-alive connections: requests check a connection out, exchange,
    /// and check it back in, so steady-state traffic pays no per-request
    /// TCP connect. A pooled connection the server has since closed is
    /// retired and the request retried once on a fresh connection —
    /// retried only when *zero* response bytes had arrived, so a request
    /// is never silently executed twice.
    ///
    /// The typed paths ([`EngineClient::request`], `build_batch`,
    /// `pipeline`) speak the pool's [`WireFormat`] — JSON by default,
    /// `GTBF1` via [`EngineClient::with_wire_format`] — and send the
    /// matching `Content-Type`/`Accept` pair. The raw
    /// [`EngineClient::http`] escape hatch always speaks JSON strings.
    #[derive(Debug, Clone)]
    pub struct EngineClient {
        addr: SocketAddr,
        pool: Arc<Pool>,
        wire_format: WireFormat,
        /// Last-profile intern cache (shared by clones): repeated builds
        /// for the same group reuse the profile's rendered JSON and GTBF
        /// fragments instead of re-serializing the float-heavy vectors.
        interned: Arc<Mutex<Option<InternedProfile>>>,
    }

    /// One profile with both wire renderings cached.
    #[derive(Debug)]
    struct InternedProfile {
        profile: GroupProfile,
        /// The profile as a JSON fragment (exactly what the derive path
        /// emits for the `profile` field).
        json: Vec<u8>,
        /// The profile as a GTBF value fragment (no frame header).
        gtbf: Vec<u8>,
    }

    #[derive(Debug)]
    struct Pool {
        idle: Mutex<Vec<TcpStream>>,
    }

    impl Pool {
        fn checkout(&self) -> Option<TcpStream> {
            self.idle.lock().expect("pool poisoned").pop()
        }

        fn checkin(&self, stream: TcpStream) {
            let mut idle = self.idle.lock().expect("pool poisoned");
            if idle.len() < MAX_IDLE {
                idle.push(stream);
            }
            // Over the bound: drop (close) instead of growing unboundedly.
        }
    }

    /// A transport or decode failure on the client side.
    #[derive(Debug)]
    pub struct ClientError(pub String);

    impl std::fmt::Display for ClientError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "client error: {}", self.0)
        }
    }

    impl std::error::Error for ClientError {}

    impl From<std::io::Error> for ClientError {
        fn from(e: std::io::Error) -> Self {
            ClientError(e.to_string())
        }
    }

    /// One decoded HTTP response plus whether the connection survives it.
    struct Exchange {
        status: u16,
        content_type: Option<String>,
        body: Vec<u8>,
        /// The connection, when it is safe to reuse (`Content-Length`
        /// framing, no `Connection: close` from the server).
        conn: Option<TcpStream>,
    }

    /// Why an exchange on a pooled connection failed.
    struct ExchangeError {
        error: ClientError,
        /// True when zero response bytes had arrived — the server cannot
        /// have answered, so a retry on a fresh connection is safe.
        retryable: bool,
    }

    impl EngineClient {
        /// A JSON-speaking client for the server at `addr`.
        #[must_use]
        pub fn new(addr: SocketAddr) -> Self {
            Self::with_wire_format(addr, WireFormat::Json)
        }

        /// A client whose typed paths speak `format` on the wire.
        #[must_use]
        pub fn with_wire_format(addr: SocketAddr, format: WireFormat) -> Self {
            Self {
                addr,
                pool: Arc::new(Pool {
                    idle: Mutex::new(Vec::new()),
                }),
                wire_format: format,
                interned: Arc::new(Mutex::new(None)),
            }
        }

        /// The wire format the typed paths speak.
        #[must_use]
        pub fn wire_format(&self) -> WireFormat {
            self.wire_format
        }

        /// Sends one protocol request and decodes the response envelope.
        ///
        /// # Errors
        /// Fails on transport errors or a body that is not a response
        /// envelope. Non-2xx statuses are *not* errors: the envelope still
        /// carries the typed answer (e.g. a protocol error).
        pub fn request(&self, request: EngineRequest) -> Result<EngineResponse, ClientError> {
            let body = self.encode_envelope(request);
            let exchange = self.exchange_pooled(
                "POST",
                "/v1/engine",
                Some(&body),
                self.wire_format.content_type(),
                Some(self.wire_format.content_type()),
            )?;
            let envelope = decode_response(exchange.content_type.as_deref(), &exchange.body)?;
            Ok(envelope.response)
        }

        /// Serializes one request envelope in this client's wire format,
        /// splicing interned profile fragments into `Build`/`Batch`
        /// payloads instead of re-serializing them. Byte-identical to
        /// encoding `RequestEnvelope::new(request)` with the derive path
        /// (pinned by the binary differential suite).
        pub fn encode_envelope(&self, request: EngineRequest) -> Vec<u8> {
            match request {
                EngineRequest::Build { ref request } => {
                    self.splice_envelope(false, &[request.as_ref()])
                }
                EngineRequest::Batch { ref requests } => {
                    self.splice_envelope(true, &requests.iter().collect::<Vec<_>>())
                }
                other => {
                    let envelope = RequestEnvelope::new(other);
                    match self.wire_format {
                        WireFormat::Json => serde_json::to_vec(&envelope)
                            .expect("request envelopes always serialize"),
                        WireFormat::Binary => binary::encode(&envelope),
                    }
                }
            }
        }

        /// Hand-assembles a `Build`/`Batch` envelope around cached profile
        /// fragments. Byte-identical to the derive path in both formats
        /// (pinned by the binary differential suite).
        fn splice_envelope(&self, batch: bool, packages: &[&PackageRequest]) -> Vec<u8> {
            match self.wire_format {
                WireFormat::Json => {
                    let mut out = Vec::with_capacity(1024);
                    let _ = write!(out, "{{\"v\":{PROTOCOL_VERSION},\"request\":{{");
                    if batch {
                        out.extend_from_slice(b"\"Batch\":{\"requests\":[");
                    } else {
                        out.extend_from_slice(b"\"Build\":{\"request\":");
                    }
                    for (i, package) in packages.iter().enumerate() {
                        if i > 0 {
                            out.push(b',');
                        }
                        self.write_package_json(package, &mut out);
                    }
                    if batch {
                        out.extend_from_slice(b"]}}}");
                    } else {
                        out.extend_from_slice(b"}}}");
                    }
                    out
                }
                WireFormat::Binary => {
                    let mut payload = Vec::with_capacity(1024);
                    binary::write_object_header(&mut payload, 2);
                    binary::write_name(&mut payload, "v");
                    binary::write_uint(&mut payload, u64::from(PROTOCOL_VERSION));
                    binary::write_name(&mut payload, "request");
                    binary::write_object_header(&mut payload, 1);
                    if batch {
                        binary::write_name(&mut payload, "Batch");
                        binary::write_object_header(&mut payload, 1);
                        binary::write_name(&mut payload, "requests");
                        binary::write_array_header(&mut payload, packages.len());
                    } else {
                        binary::write_name(&mut payload, "Build");
                        binary::write_object_header(&mut payload, 1);
                        binary::write_name(&mut payload, "request");
                    }
                    for package in packages {
                        self.write_package_gtbf(package, &mut payload);
                    }
                    binary::frame(&payload)
                }
            }
        }

        fn write_package_json(&self, package: &PackageRequest, out: &mut Vec<u8>) {
            let _ = write!(out, "{{\"session_id\":{},\"city\":", package.session_id);
            serde_json::to_writer(out, &package.city).expect("strings serialize");
            out.extend_from_slice(b",\"profile\":");
            {
                let interned = self.intern(&package.profile);
                let cached = interned.as_ref().expect("intern populates the slot");
                out.extend_from_slice(&cached.json);
            }
            out.extend_from_slice(b",\"query\":");
            serde_json::to_writer(out, &package.query).expect("queries serialize");
            out.extend_from_slice(b",\"config\":");
            serde_json::to_writer(out, &package.config).expect("configs serialize");
            out.push(b'}');
        }

        fn write_package_gtbf(&self, package: &PackageRequest, out: &mut Vec<u8>) {
            binary::write_object_header(out, 5);
            binary::write_name(out, "session_id");
            binary::write_uint(out, package.session_id);
            binary::write_name(out, "city");
            binary::write_str(out, &package.city);
            binary::write_name(out, "profile");
            {
                let interned = self.intern(&package.profile);
                let cached = interned.as_ref().expect("intern populates the slot");
                out.extend_from_slice(&cached.gtbf);
            }
            binary::write_name(out, "query");
            binary::encode_payload_into(&package.query, out);
            binary::write_name(out, "config");
            binary::encode_payload_into(&package.config, out);
        }

        /// Returns the intern slot, (re)populated for `profile` on a miss.
        fn intern(
            &self,
            profile: &GroupProfile,
        ) -> std::sync::MutexGuard<'_, Option<InternedProfile>> {
            let mut slot = self.interned.lock().expect("intern cache poisoned");
            let hit = matches!(&*slot, Some(cached) if cached.profile == *profile);
            if !hit {
                let json = serde_json::to_vec(profile).expect("profiles serialize");
                let mut gtbf = Vec::new();
                binary::encode_payload_into(profile, &mut gtbf);
                *slot = Some(InternedProfile {
                    profile: profile.clone(),
                    json,
                    gtbf,
                });
            }
            slot
        }

        /// Builds a batch of packages in one round trip
        /// (`EngineRequest::Batch`): one connection, one request frame,
        /// engine-side fan-out — the cheapest way to amortize the wire
        /// over many builds.
        ///
        /// # Errors
        /// Transport/decode failures, or a protocol-level error response.
        pub fn build_batch(
            &self,
            requests: Vec<PackageRequest>,
        ) -> Result<Vec<PackageResponse>, ClientError> {
            match self.request(EngineRequest::Batch { requests })? {
                EngineResponse::Batch { responses } => Ok(responses),
                EngineResponse::Error { error } => {
                    Err(ClientError(format!("protocol error: {}", error.message)))
                }
                other => Err(ClientError(format!(
                    "expected a batch response, got {}",
                    other.kind()
                ))),
            }
        }

        /// Sends a batch of session commands in one round trip
        /// (`EngineRequest::CommandBatch`).
        ///
        /// # Errors
        /// Transport/decode failures, or a protocol-level error response.
        pub fn command_batch(
            &self,
            requests: Vec<CommandRequest>,
        ) -> Result<Vec<CommandResponse>, ClientError> {
            match self.request(EngineRequest::CommandBatch { requests })? {
                EngineResponse::CommandBatch { responses } => Ok(responses),
                EngineResponse::Error { error } => {
                    Err(ClientError(format!("protocol error: {}", error.message)))
                }
                other => Err(ClientError(format!(
                    "expected a command-batch response, got {}",
                    other.kind()
                ))),
            }
        }

        /// Pipelines `requests` over **one** connection: every frame is
        /// written back-to-back before the first response is read, so N
        /// requests pay one connection and one write/read turnaround
        /// instead of N. Responses come back in request order.
        ///
        /// No retry: a mid-pipeline transport failure is returned as an
        /// error (some requests may have been executed).
        ///
        /// # Errors
        /// Transport/decode failures.
        pub fn pipeline(
            &self,
            requests: &[EngineRequest],
        ) -> Result<Vec<EngineResponse>, ClientError> {
            if requests.is_empty() {
                return Ok(Vec::new());
            }
            let content_type = self.wire_format.content_type();
            let mut payload = Vec::new();
            for request in requests {
                let body = self.encode_envelope(request.clone());
                payload.extend_from_slice(&frame_request(
                    "POST",
                    "/v1/engine",
                    self.addr,
                    Some(&body),
                    content_type,
                    Some(content_type),
                ));
            }
            let mut stream = match self.pool.checkout() {
                Some(stream) => stream,
                None => self.connect()?,
            };
            if stream.write_all(&payload).is_err() {
                // A stale pooled connection dies on the first write; one
                // fresh connection retry (nothing was answered yet).
                stream = self.connect()?;
                stream.write_all(&payload)?;
            }
            stream.flush()?;
            let mut reader = BufReader::new(stream);
            let mut responses = Vec::with_capacity(requests.len());
            let mut reusable = true;
            for _ in requests {
                let response = read_response(&mut reader).map_err(|e| e.error)?;
                let envelope = decode_response(response.content_type.as_deref(), &response.body)?;
                responses.push(envelope.response);
                if response.close || !response.framed {
                    reusable = false;
                }
            }
            if reusable {
                self.pool.checkin(reader.into_inner());
            }
            Ok(responses)
        }

        /// One raw JSON HTTP exchange: `(status, body)`. The escape hatch
        /// for tests and tools that speak envelope JSON by hand; the
        /// pool's wire format does not apply here. Uses a pooled
        /// keep-alive connection when one is idle; checks it back in when
        /// the response allows reuse.
        ///
        /// # Errors
        /// Fails on connect/transport errors, a malformed response head,
        /// or a non-UTF-8 body.
        pub fn http(
            &self,
            method: &str,
            path: &str,
            body: Option<&str>,
        ) -> Result<(u16, String), ClientError> {
            let exchange = self.exchange_pooled(
                method,
                path,
                body.map(str::as_bytes),
                "application/json",
                None,
            )?;
            let body = String::from_utf8(exchange.body)
                .map_err(|_| ClientError("non-UTF-8 body".to_string()))?;
            Ok((exchange.status, body))
        }

        /// One exchange over a pooled connection, retrying once on a
        /// fresh connection when the pooled one died before any response
        /// byte arrived.
        fn exchange_pooled(
            &self,
            method: &str,
            path: &str,
            body: Option<&[u8]>,
            content_type: &str,
            accept: Option<&str>,
        ) -> Result<Exchange, ClientError> {
            if let Some(stream) = self.pool.checkout() {
                match Self::exchange(stream, self.addr, method, path, body, content_type, accept) {
                    Ok(mut exchange) => {
                        if let Some(conn) = exchange.conn.take() {
                            self.pool.checkin(conn);
                        }
                        return Ok(exchange);
                    }
                    Err(e) if e.retryable => {
                        // The pooled connection had been closed server-side
                        // (idle timeout); fall through to a fresh one.
                    }
                    Err(e) => return Err(e.error),
                }
            }
            let stream = self.connect()?;
            match Self::exchange(stream, self.addr, method, path, body, content_type, accept) {
                Ok(mut exchange) => {
                    if let Some(conn) = exchange.conn.take() {
                        self.pool.checkin(conn);
                    }
                    Ok(exchange)
                }
                Err(e) => Err(e.error),
            }
        }

        fn connect(&self) -> Result<TcpStream, ClientError> {
            let stream = TcpStream::connect(self.addr)?;
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(Some(RESPONSE_TIMEOUT));
            Ok(stream)
        }

        /// Writes one request and reads one response off `stream`.
        fn exchange(
            mut stream: TcpStream,
            addr: SocketAddr,
            method: &str,
            path: &str,
            body: Option<&[u8]>,
            content_type: &str,
            accept: Option<&str>,
        ) -> Result<Exchange, ExchangeError> {
            let frame = frame_request(method, path, addr, body, content_type, accept);
            if let Err(e) = stream.write_all(&frame).and_then(|()| stream.flush()) {
                // Nothing read yet: the peer cannot have answered.
                return Err(ExchangeError {
                    error: ClientError(e.to_string()),
                    retryable: true,
                });
            }
            let mut reader = BufReader::new(stream);
            let response = read_response(&mut reader)?;
            Ok(Exchange {
                status: response.status,
                content_type: response.content_type,
                body: response.body,
                conn: (!response.close && response.framed).then(|| reader.into_inner()),
            })
        }
    }

    /// Decodes a response envelope by its `Content-Type`: `GTBF1` when the
    /// server answered binary, JSON otherwise.
    fn decode_response(
        content_type: Option<&str>,
        body: &[u8],
    ) -> Result<ResponseEnvelope, ClientError> {
        if content_type.is_some_and(|ct| ct.contains(BINARY_CONTENT_TYPE)) {
            binary::decode(body).map_err(|e| ClientError(e.to_string()))
        } else {
            serde_json::from_slice(body).map_err(|e| ClientError(e.to_string()))
        }
    }

    /// Renders one request frame. Keep-alive by default (no
    /// `Connection: close`): connection reuse is the whole point of the
    /// pool, and the server reaps idle sockets on its own timeout.
    fn frame_request(
        method: &str,
        path: &str,
        addr: SocketAddr,
        body: Option<&[u8]>,
        content_type: &str,
        accept: Option<&str>,
    ) -> Vec<u8> {
        let body = body.unwrap_or(b"");
        let mut frame = Vec::with_capacity(body.len() + 160);
        let _ = write!(
            frame,
            "{method} {path} HTTP/1.1\r\nHost: {addr}\r\n\
             Content-Type: {content_type}\r\nContent-Length: {}\r\n",
            body.len(),
        );
        if let Some(accept) = accept {
            let _ = write!(frame, "Accept: {accept}\r\n");
        }
        frame.extend_from_slice(b"\r\n");
        frame.extend_from_slice(body);
        frame
    }

    /// One decoded response off a buffered reader.
    struct RawResponse {
        status: u16,
        content_type: Option<String>,
        body: Vec<u8>,
        /// Server asked to close (`Connection: close`).
        close: bool,
        /// Body was `Content-Length`-framed (reuse-safe). When false the
        /// body ran to EOF and the connection is spent.
        framed: bool,
    }

    /// Reads one response; `retryable` is set only if EOF arrived before
    /// a single status byte.
    fn read_response(reader: &mut BufReader<TcpStream>) -> Result<RawResponse, ExchangeError> {
        let mut status_line = String::new();
        match reader.read_line(&mut status_line) {
            Ok(0) => {
                return Err(ExchangeError {
                    error: ClientError("connection closed before a response".to_string()),
                    retryable: true,
                })
            }
            Ok(_) => {}
            Err(e) => {
                return Err(ExchangeError {
                    error: ClientError(e.to_string()),
                    retryable: status_line.is_empty(),
                })
            }
        }
        let fatal = |message: String| ExchangeError {
            error: ClientError(message),
            retryable: false,
        };
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| fatal(format!("bad status line `{status_line}`")))?;

        let mut content_length: Option<usize> = None;
        let mut content_type: Option<String> = None;
        let mut close = false;
        loop {
            let mut line = String::new();
            reader
                .read_line(&mut line)
                .map_err(|e| fatal(e.to_string()))?;
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((name, value)) = line.split_once(':') {
                let name = name.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().ok();
                } else if name.eq_ignore_ascii_case("content-type") {
                    content_type = Some(value.trim().to_string());
                } else if name.eq_ignore_ascii_case("connection") {
                    close = value
                        .split(',')
                        .any(|token| token.trim().eq_ignore_ascii_case("close"));
                }
            }
        }
        let framed = content_length.is_some();
        let body = match content_length {
            Some(n) => {
                let mut buf = vec![0u8; n];
                reader
                    .read_exact(&mut buf)
                    .map_err(|e| fatal(e.to_string()))?;
                buf
            }
            None => {
                // No Content-Length: the body runs to EOF. Tolerate a
                // trailing CRLF from servers that over-send — and ONLY
                // here: a length-framed body is exact, and stripping real
                // trailing newlines would corrupt NDJSON payloads.
                let mut buf = Vec::new();
                reader
                    .read_to_end(&mut buf)
                    .map_err(|e| fatal(e.to_string()))?;
                while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
                    buf.pop();
                }
                buf
            }
        };
        Ok(RawResponse {
            status,
            content_type,
            body,
            close,
            framed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouptravel_engine::EngineConfig;

    fn running_with(backend: Backend) -> RunningServer {
        RunningServer::start(
            Arc::new(Engine::new(EngineConfig::fast())),
            ServerConfig {
                worker_threads: 2,
                backend,
                ..ServerConfig::default()
            },
        )
        .expect("bind an ephemeral port")
    }

    fn both_backends(test: impl Fn(RunningServer)) {
        test(running_with(Backend::default()));
        test(running_with(Backend::Blocking));
    }

    #[test]
    fn healthz_and_unknown_routes_answer_typed() {
        both_backends(|server| {
            let client = client::EngineClient::new(server.addr());

            let (status, body) = client.http("GET", "/healthz", None).unwrap();
            assert_eq!(status, 200);
            assert!(body.contains("\"ok\""));
            // The resolved thread budgets ride along on the liveness probe.
            assert!(body.contains("\"worker_threads\":"), "{body}");
            assert!(body.contains("\"train_threads\":"), "{body}");

            let (status, body) = client.http("GET", "/nope", None).unwrap();
            assert_eq!(status, 404);
            assert!(body.contains(&format!("\"code\":{}", ProtocolError::NOT_FOUND)));

            let (status, _) = client.http("DELETE", "/healthz", None).unwrap();
            assert_eq!(status, 405);
            server.stop();
        });
    }

    #[test]
    fn query_strings_do_not_change_the_route() {
        // Regression: `GET /healthz?probe=1` answered 404 because routing
        // matched the full request target, query string included.
        both_backends(|server| {
            let client = client::EngineClient::new(server.addr());
            let (status, body) = client.http("GET", "/healthz?probe=1", None).unwrap();
            assert_eq!(status, 200, "query strings must not 404: {body}");
            assert!(body.contains("\"ok\""));
            let (status, body) = client.http("GET", "/stats?pretty", None).unwrap();
            assert_eq!(status, 200);
            assert!(body.contains("\"requests\""));
            server.stop();
        });
    }

    #[test]
    fn query_strings_label_as_their_route_in_metrics() {
        // Regression: `/stats?pretty` was mislabeled `other` in
        // `gt_http_request_seconds`.
        assert_eq!(route_label("/stats?pretty"), "/stats");
        assert_eq!(route_label("/healthz?probe=1"), "/healthz");
        assert_eq!(route_label("/stats"), "/stats");
        assert_eq!(route_label("/nope?x"), "other");

        let server = running_with(Backend::default());
        let client = client::EngineClient::new(server.addr());
        let (status, _) = client.http("GET", "/stats?pretty", None).unwrap();
        assert_eq!(status, 200);
        let (_, scrape) = client.http("GET", "/metrics", None).unwrap();
        let stats_count = scrape
            .lines()
            .find(|l| {
                l.starts_with("gt_http_request_seconds_count{route=\"/stats\",format=\"json\"}")
            })
            .and_then(|l| l.rsplit(' ').next())
            .and_then(|v| v.parse::<f64>().ok())
            .expect("stats route series present");
        assert!(
            stats_count >= 1.0,
            "the query-string request must count under /stats"
        );
        server.stop();
    }

    #[test]
    fn malformed_bodies_and_wrong_versions_are_400s() {
        both_backends(|server| {
            let client = client::EngineClient::new(server.addr());

            let (status, body) = client
                .http("POST", "/v1/engine", Some("this is not json"))
                .unwrap();
            assert_eq!(status, 400);
            assert!(body.contains(&format!("\"code\":{}", ProtocolError::MALFORMED_REQUEST)));

            let wrong_version = "{\"v\": 99, \"request\": \"Stats\"}";
            let (status, body) = client
                .http("POST", "/v1/engine", Some(wrong_version))
                .unwrap();
            assert_eq!(status, 400);
            assert!(body.contains(&format!("\"code\":{}", ProtocolError::UNSUPPORTED_VERSION)));
            server.stop();
        });
    }

    #[test]
    fn stats_round_trips_through_the_wire() {
        both_backends(|server| {
            let client = client::EngineClient::new(server.addr());
            let response = client.request(EngineRequest::Stats).unwrap();
            match response {
                EngineResponse::Stats { stats } => {
                    assert_eq!(stats.requests, 0);
                }
                other => panic!("expected Stats, got {other:?}"),
            }
            let (status, body) = client.http("GET", "/stats", None).unwrap();
            assert_eq!(status, 200);
            assert!(body.contains("\"requests\""));
            server.stop();
        });
    }

    #[test]
    fn pooled_connections_are_reused_across_requests() {
        let server = running_with(Backend::default());
        let client = client::EngineClient::new(server.addr());
        for _ in 0..5 {
            let (status, _) = client.http("GET", "/healthz", None).unwrap();
            assert_eq!(status, 200);
        }
        let registry = server.engine().metrics_registry();
        let reuses = registry
            .counter("gt_http_keepalive_reuses_total", "", &[])
            .get();
        assert!(
            reuses >= 4,
            "five sequential requests on one pooled connection must reuse it; got {reuses}"
        );
        server.stop();
    }
}
