//! The epoll reactor front-end: one event-loop thread owns every
//! connection's sockets, a small worker pool owns every request's engine
//! work, and the two never block each other.
//!
//! ## Why a reactor
//!
//! The blocking front-end parks one worker thread per in-flight
//! *connection*: a client that connects and stalls holds a worker for the
//! whole read timeout, and 10k idle keep-alive sockets would need 10k
//! threads (or starve). Here connection count is decoupled from thread
//! count — the reactor multiplexes every socket over one `epoll` instance,
//! idle connections cost one fd and ~1 KiB of state, and the only threads
//! are the reactor itself plus `worker_threads` dispatchers.
//!
//! ## Connection lifecycle
//!
//! ```text
//!            accept (nonblocking, EPOLLIN on the listener)
//!              │
//!              ▼
//!   ┌──► Reading ── bytes feed an incremental RequestParser; a completed
//!   │       │        request moves on, a parse error answers 400 + close
//!   │       ▼
//!   │   Dispatched ─ request queued to the worker pool; epoll interest is
//!   │       │        dropped so a pipelining client cannot flood the loop
//!   │       ▼        (worker rings an eventfd when the response is ready)
//!   │   Writing ──── response bytes drain under EPOLLOUT, resuming across
//!   │       │        readiness events on partial writes
//!   └───────┘ keep-alive: back to Reading (a buffered pipelined request
//!             dispatches immediately); `Connection: close` closes.
//! ```
//!
//! Idle/keep-alive and stalled-mid-request timeouts come from a coarse
//! timer wheel (`TIMER_GRANULARITY` buckets): every connection has exactly
//! one wheel entry; activity just moves its deadline, and a fired entry
//! re-inserts itself unless the deadline truly passed. Connections waiting
//! on the engine (`Dispatched`) are never reaped.
//!
//! ## Offline policy
//!
//! No mio/tokio under the vendored-dependency rule: the `sys` module
//! declares the four syscalls this needs (`epoll_create1`, `epoll_ctl`,
//! `epoll_wait`, `eventfd`) directly against libc, which std already
//! links. The module is Linux-only; other platforms fall back to the
//! blocking front-end (see `Backend` in the crate root).

use crate::http::{self, ReadError, RequestParser};
use crate::{error_body, route, ServerConfig, ServerMetrics};
use grouptravel_engine::{Engine, ProtocolError};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Minimal epoll + eventfd syscall surface, declared against the libc std
/// already links (offline policy: no `libc` crate to depend on).
mod sys {
    use std::io;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    /// `struct epoll_event`; packed on x86_64 per the kernel ABI.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    /// An owned epoll instance.
    pub struct Epoll {
        fd: i32,
    }

    impl Epoll {
        pub fn new() -> io::Result<Self> {
            // SAFETY: plain syscall, no pointers.
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { fd })
        }

        fn ctl(&self, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
            let mut event = EpollEvent { events, data };
            // SAFETY: `event` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.fd, op, fd, &mut event) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn add(&self, fd: i32, events: u32, data: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, events, data)
        }

        pub fn modify(&self, fd: i32, events: u32, data: u64) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, events, data)
        }

        pub fn delete(&self, fd: i32) {
            let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
        }

        /// Waits up to `timeout_ms` and fills `events`; EINTR retries.
        pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
            loop {
                // SAFETY: the buffer is valid for `events.len()` entries.
                let n = unsafe {
                    epoll_wait(
                        self.fd,
                        events.as_mut_ptr(),
                        events.len() as i32,
                        timeout_ms,
                    )
                };
                if n >= 0 {
                    return Ok(n as usize);
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: fd is owned and valid until here.
            unsafe { close(self.fd) };
        }
    }

    /// An owned nonblocking eventfd: the cross-thread wakeup the worker
    /// pool uses to pull the reactor out of `epoll_wait`.
    pub struct EventFd {
        fd: i32,
    }

    impl EventFd {
        pub fn new() -> io::Result<Self> {
            // SAFETY: plain syscall, no pointers.
            let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if fd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { fd })
        }

        pub fn raw(&self) -> i32 {
            self.fd
        }

        /// Rings the wakeup (adds 1 to the counter). Infallible by
        /// construction short of fd exhaustion races; errors are ignored —
        /// a missed wake is recovered by the reactor's tick timeout.
        pub fn ring(&self) {
            let one: u64 = 1;
            // SAFETY: 8 valid bytes, the eventfd write contract.
            unsafe { write(self.fd, std::ptr::addr_of!(one).cast(), 8) };
        }

        /// Drains the counter so the fd stops polling readable.
        pub fn drain(&self) {
            let mut buf = [0u8; 8];
            // SAFETY: 8 valid bytes; nonblocking read.
            unsafe { read(self.fd, buf.as_mut_ptr(), 8) };
        }
    }

    // SAFETY: the wrapped fd is just an integer; eventfd reads/writes are
    // atomic and thread-safe by kernel contract.
    unsafe impl Send for EventFd {}
    unsafe impl Sync for EventFd {}

    impl Drop for EventFd {
        fn drop(&mut self) {
            // SAFETY: fd is owned and valid until here.
            unsafe { close(self.fd) };
        }
    }
}

/// epoll user-data token of the listening socket.
const LISTENER_TOKEN: u64 = u64::MAX;
/// epoll user-data token of the wakeup eventfd.
const WAKER_TOKEN: u64 = u64::MAX - 1;

/// Timer-wheel bucket width. Idle timeouts fire within one granule of
/// their deadline — keep-alive reaping is a resource bound, not a
/// latency-sensitive path.
const TIMER_GRANULARITY: Duration = Duration::from_millis(250);

/// Per-`read` scratch size. Most requests fit in one read.
const READ_CHUNK: usize = 64 * 1024;

/// Where a connection is in its request/response cycle.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ConnState {
    /// Feeding bytes to the parser, waiting for a complete request.
    Reading,
    /// A request is in the worker pool; socket interest is parked.
    Dispatched,
    /// Draining the response buffer under EPOLLOUT.
    Writing,
}

/// One connection's whole state: socket, resumable parser, pending output,
/// keep-alive bookkeeping.
struct Conn {
    stream: TcpStream,
    /// Guards against stale tokens after slot reuse.
    gen: u32,
    parser: RequestParser,
    state: ConnState,
    /// The encoded response being written, drained `written..`.
    out: Vec<u8>,
    written: usize,
    close_after: bool,
    /// Currently registered epoll interest (avoids redundant `EPOLL_CTL_MOD`s).
    interest: u32,
    /// Reaped when this passes while `Reading` or `Writing`.
    deadline: Instant,
    /// Requests served on this connection (≥1 ⇒ keep-alive reuse).
    served: u64,
}

/// A parsed request on its way to the worker pool.
struct Job {
    token: u64,
    request: http::Request,
}

/// A worker's finished response on its way back to the reactor.
struct Completion {
    token: u64,
    payload: Vec<u8>,
    close: bool,
}

/// Handle to a running reactor: everything `RunningServer` needs to stop
/// it and join its threads.
pub(crate) struct ReactorHandle {
    shutdown: Arc<AtomicBool>,
    waker: Arc<sys::EventFd>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ReactorHandle {
    pub(crate) fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.ring();
        if let Some(handle) = self.reactor.take() {
            let _ = handle.join();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Binds, spawns the reactor thread and its dispatch workers, and returns
/// immediately.
pub(crate) fn start(
    engine: Arc<Engine>,
    metrics: Arc<ServerMetrics>,
    config: ServerConfig,
) -> io::Result<(SocketAddr, ReactorHandle)> {
    let listener = TcpListener::bind(&config.addr)?;
    let local_addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let shutdown = Arc::new(AtomicBool::new(false));
    let waker = Arc::new(sys::EventFd::new()?);
    let completions: Arc<Mutex<Vec<Completion>>> = Arc::new(Mutex::new(Vec::new()));
    let (job_sender, job_receiver) = mpsc::channel::<Job>();
    let job_receiver = Arc::new(Mutex::new(job_receiver));

    let workers = (0..config.worker_threads.max(1))
        .map(|_| {
            let receiver = Arc::clone(&job_receiver);
            let engine = Arc::clone(&engine);
            let metrics = Arc::clone(&metrics);
            let completions = Arc::clone(&completions);
            let waker = Arc::clone(&waker);
            std::thread::spawn(move || {
                // One response-body buffer per worker, reused across jobs.
                let mut body = Vec::new();
                loop {
                    let job = receiver.lock().expect("job queue poisoned").recv();
                    let Ok(Job { token, request }) = job else {
                        break; // channel closed: reactor is gone.
                    };
                    let close = request.wants_close();
                    let start = Instant::now();
                    let routed = route(&engine, &request, &mut body);
                    metrics.record(
                        request.route_path(),
                        &routed,
                        request.body.len(),
                        body.len(),
                        start.elapsed(),
                    );
                    let payload =
                        http::encode_response(routed.status, routed.content_type, &body, close);
                    completions
                        .lock()
                        .expect("completion queue poisoned")
                        .push(Completion {
                            token,
                            payload,
                            close,
                        });
                    waker.ring();
                }
            })
        })
        .collect();

    let reactor_shutdown = Arc::clone(&shutdown);
    let reactor_waker = Arc::clone(&waker);
    let reactor = std::thread::Builder::new()
        .name("gt-reactor".into())
        .spawn(move || {
            let mut reactor = match Reactor::new(
                listener,
                reactor_config(&config),
                metrics,
                job_sender,
                completions,
                reactor_waker,
                reactor_shutdown,
            ) {
                Ok(reactor) => reactor,
                Err(_) => return, // epoll/eventfd creation failed at boot.
            };
            reactor.run();
        })?;

    Ok((
        local_addr,
        ReactorHandle {
            shutdown,
            waker,
            reactor: Some(reactor),
            workers,
        },
    ))
}

/// The knobs the reactor itself consumes (a plain copy of `ServerConfig`
/// minus the address it has already bound).
struct ReactorConfig {
    max_body_bytes: usize,
    keep_alive_timeout: Duration,
    max_connections: usize,
    write_chunk_limit: Option<usize>,
}

fn reactor_config(config: &ServerConfig) -> ReactorConfig {
    ReactorConfig {
        max_body_bytes: config.max_body_bytes,
        keep_alive_timeout: config.keep_alive_timeout,
        max_connections: config.max_connections,
        write_chunk_limit: config.write_chunk_limit,
    }
}

/// A coarse hashed timer wheel: every live connection owns exactly one
/// entry; fired entries re-insert themselves while the connection's actual
/// deadline is still ahead (activity only moves the deadline — O(1), no
/// removal).
struct TimerWheel {
    start: Instant,
    buckets: Vec<Vec<(u32, u32)>>,
    /// The last tick that has been drained.
    drained_tick: u64,
}

impl TimerWheel {
    fn new(start: Instant, span: Duration) -> Self {
        // Enough buckets to place any deadline ≤ span + one granule ahead
        // without wrapping onto an undrained tick.
        let ticks = span.as_millis() as u64 / TIMER_GRANULARITY.as_millis() as u64 + 2;
        Self {
            start,
            buckets: vec![Vec::new(); usize::try_from(ticks.next_power_of_two()).expect("fits")],
            drained_tick: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.start);
        elapsed.as_millis() as u64 / TIMER_GRANULARITY.as_millis() as u64
    }

    fn insert(&mut self, deadline: Instant, gen: u32, idx: u32) {
        let tick = self.tick_of(deadline).max(self.drained_tick + 1);
        let bucket = (tick % self.buckets.len() as u64) as usize;
        self.buckets[bucket].push((gen, idx));
    }

    /// Drains every bucket whose tick has passed; the caller re-checks
    /// each candidate's real deadline.
    fn advance(&mut self, now: Instant) -> Vec<(u32, u32)> {
        let current = self.tick_of(now);
        let mut fired = Vec::new();
        while self.drained_tick < current {
            self.drained_tick += 1;
            let bucket = (self.drained_tick % self.buckets.len() as u64) as usize;
            fired.append(&mut self.buckets[bucket]);
        }
        fired
    }
}

struct Reactor {
    epoll: sys::Epoll,
    listener: TcpListener,
    config: ReactorConfig,
    metrics: Arc<ServerMetrics>,
    jobs: mpsc::Sender<Job>,
    completions: Arc<Mutex<Vec<Completion>>>,
    waker: Arc<sys::EventFd>,
    shutdown: Arc<AtomicBool>,
    slots: Vec<Option<Conn>>,
    /// Generation per slot, bumped on free: stale epoll/completion tokens
    /// for a reused slot fail the gen check and are dropped.
    gens: Vec<u32>,
    free: Vec<u32>,
    open: usize,
    wheel: TimerWheel,
    scratch: Vec<u8>,
}

impl Reactor {
    fn new(
        listener: TcpListener,
        config: ReactorConfig,
        metrics: Arc<ServerMetrics>,
        jobs: mpsc::Sender<Job>,
        completions: Arc<Mutex<Vec<Completion>>>,
        waker: Arc<sys::EventFd>,
        shutdown: Arc<AtomicBool>,
    ) -> io::Result<Self> {
        let epoll = sys::Epoll::new()?;
        epoll.add(listener.as_raw_fd(), sys::EPOLLIN, LISTENER_TOKEN)?;
        epoll.add(waker.raw(), sys::EPOLLIN, WAKER_TOKEN)?;
        let wheel = TimerWheel::new(Instant::now(), config.keep_alive_timeout);
        Ok(Self {
            epoll,
            listener,
            config,
            metrics,
            jobs,
            completions,
            waker,
            shutdown,
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            open: 0,
            wheel,
            scratch: vec![0u8; READ_CHUNK],
        })
    }

    fn run(&mut self) {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 1024];
        let tick_ms = i32::try_from(TIMER_GRANULARITY.as_millis()).expect("granularity fits");
        while !self.shutdown.load(Ordering::SeqCst) {
            let n = match self.epoll.wait(&mut events, tick_ms) {
                Ok(n) => n,
                Err(_) => break,
            };
            for event in &events[..n] {
                // Copy out of the (possibly packed) struct before use.
                let token = event.data;
                let readiness = event.events;
                match token {
                    LISTENER_TOKEN => self.accept_ready(),
                    WAKER_TOKEN => self.waker.drain(),
                    token => self.conn_ready(token, readiness),
                }
            }
            self.drain_completions();
            let now = Instant::now();
            for (gen, idx) in self.wheel.advance(now) {
                self.check_deadline(gen, idx, now);
            }
        }
    }

    // ---- tokens and slots -------------------------------------------------

    fn token(gen: u32, idx: u32) -> u64 {
        (u64::from(gen) << 32) | u64::from(idx)
    }

    /// Resolves a token to its live slot index, rejecting stale tokens
    /// whose slot has been recycled since.
    fn lookup(&self, token: u64) -> Option<u32> {
        let (gen, idx) = ((token >> 32) as u32, token as u32);
        match self.slots.get(idx as usize) {
            Some(Some(conn)) if conn.gen == gen => Some(idx),
            _ => None,
        }
    }

    // ---- accept -----------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.metrics.connections.inc();
                    if self.open >= self.config.max_connections {
                        // Over the connection budget: shed at accept so the
                        // established connections keep their service level.
                        drop(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.install(stream);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient accept failures (EMFILE under fd pressure,
                // peer reset before accept): yield and let the next
                // readiness event retry.
                Err(_) => break,
            }
        }
    }

    fn install(&mut self, stream: TcpStream) {
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(None);
                self.gens.push(0);
                u32::try_from(self.slots.len() - 1).expect("slot count fits u32")
            }
        };
        let gen = self.gens[idx as usize];
        let deadline = Instant::now() + self.config.keep_alive_timeout;
        let interest = sys::EPOLLIN | sys::EPOLLRDHUP;
        if self
            .epoll
            .add(stream.as_raw_fd(), interest, Self::token(gen, idx))
            .is_err()
        {
            self.free.push(idx);
            return;
        }
        self.slots[idx as usize] = Some(Conn {
            stream,
            gen,
            parser: RequestParser::new(self.config.max_body_bytes),
            state: ConnState::Reading,
            out: Vec::new(),
            written: 0,
            close_after: false,
            interest,
            deadline,
            served: 0,
        });
        self.open += 1;
        self.wheel.insert(deadline, gen, idx);
    }

    fn close(&mut self, idx: u32) {
        if let Some(conn) = self.slots[idx as usize].take() {
            self.epoll.delete(conn.stream.as_raw_fd());
            self.gens[idx as usize] = self.gens[idx as usize].wrapping_add(1);
            self.free.push(idx);
            self.open -= 1;
            // `conn` drops here, closing the fd.
        }
    }

    fn set_interest(&mut self, idx: u32, events: u32) {
        let Some(conn) = self.slots[idx as usize].as_mut() else {
            return;
        };
        if conn.interest == events {
            return;
        }
        let token = Self::token(conn.gen, idx);
        let fd = conn.stream.as_raw_fd();
        conn.interest = events;
        if self.epoll.modify(fd, events, token).is_err() {
            self.close(idx);
        }
    }

    // ---- readiness --------------------------------------------------------

    fn conn_ready(&mut self, token: u64, readiness: u32) {
        let Some(idx) = self.lookup(token) else {
            return; // stale event for a recycled slot
        };
        if readiness & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            self.close(idx);
            return;
        }
        let state = self.slots[idx as usize].as_ref().expect("live conn").state;
        match state {
            ConnState::Reading => self.read_ready(idx),
            // Response draining; EPOLLRDHUP may ride along — the write
            // path discovers a dead peer by failing, which is enough.
            ConnState::Writing => {
                if readiness & sys::EPOLLOUT != 0 {
                    self.write_ready(idx);
                }
            }
            // An event while a request is in the worker pool means the
            // peer is pipelining ahead (or half-closed). Nothing will be
            // read until the response goes out, so park interest NOW —
            // otherwise this level-triggered event refires every loop and
            // the reactor spins against the very workers it is waiting
            // on. Parking lazily (here, not at dispatch) keeps the common
            // request/response exchange at zero `epoll_ctl` calls.
            ConnState::Dispatched => self.set_interest(idx, 0),
        }
    }

    fn read_ready(&mut self, idx: u32) {
        loop {
            let conn = self.slots[idx as usize].as_mut().expect("live conn");
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    // EOF. Clean between requests ⇒ normal keep-alive end.
                    self.close(idx);
                    return;
                }
                Ok(n) => {
                    conn.parser.feed(&self.scratch[..n]);
                    conn.deadline = Instant::now() + self.config.keep_alive_timeout;
                    if self.try_dispatch(idx) {
                        return; // stop reading while a request is in flight
                    }
                    if self.slots[idx as usize].is_none() {
                        return; // parse error closed it
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
    }

    /// Polls the connection's parser; dispatches a completed request to
    /// the worker pool or answers a parse failure. Returns whether the
    /// connection left the `Reading` state (or closed).
    fn try_dispatch(&mut self, idx: u32) -> bool {
        let polled = {
            let conn = self.slots[idx as usize].as_mut().expect("live conn");
            conn.parser.poll()
        };
        match polled {
            Ok(Some(request)) => {
                let token = {
                    let conn = self.slots[idx as usize].as_mut().expect("live conn");
                    if conn.served > 0 {
                        self.metrics.keepalive_reuses.inc();
                    }
                    conn.served += 1;
                    conn.state = ConnState::Dispatched;
                    Self::token(conn.gen, idx)
                };
                // Interest stays armed: a client awaiting its response
                // sends nothing, so no events fire and the re-arm after
                // the response is a no-op `epoll_ctl`. A pipeliner that
                // does keep sending trips `conn_ready` in `Dispatched`,
                // which parks interest then — backpressuring the flood
                // into the kernel without taxing the common case.
                if self.jobs.send(Job { token, request }).is_err() {
                    self.close(idx); // workers are gone (shutdown race)
                }
                true
            }
            Ok(None) => false,
            Err(error) => {
                // Framing is lost: answer what we can and close.
                let (status, body) = match error {
                    ReadError::BodyTooLarge { declared, limit } => (
                        413,
                        error_body(ProtocolError::new(
                            ProtocolError::BODY_TOO_LARGE,
                            format!(
                                "request body of {declared} bytes exceeds the {limit}-byte limit"
                            ),
                        )),
                    ),
                    ReadError::Malformed(why) => (
                        400,
                        error_body(ProtocolError::new(
                            ProtocolError::MALFORMED_REQUEST,
                            format!("malformed HTTP request: {why}"),
                        )),
                    ),
                    // Io/ConnectionClosed do not arise from `poll`.
                    _ => {
                        self.close(idx);
                        return true;
                    }
                };
                self.start_write(
                    idx,
                    http::encode_response(status, "application/json", &body, true),
                    true,
                );
                true
            }
        }
    }

    fn start_write(&mut self, idx: u32, payload: Vec<u8>, close_after: bool) {
        {
            let Some(conn) = self.slots[idx as usize].as_mut() else {
                return;
            };
            conn.out = payload;
            conn.written = 0;
            conn.close_after = close_after;
            conn.state = ConnState::Writing;
            conn.deadline = Instant::now() + self.config.keep_alive_timeout;
        }
        self.write_ready(idx);
    }

    fn write_ready(&mut self, idx: u32) {
        loop {
            let limit = self.config.write_chunk_limit;
            let conn = self.slots[idx as usize].as_mut().expect("live conn");
            let end = limit.map_or(conn.out.len(), |cap| conn.out.len().min(conn.written + cap));
            match conn.stream.write(&conn.out[conn.written..end]) {
                Ok(0) => {
                    self.close(idx);
                    return;
                }
                Ok(n) => {
                    conn.written += n;
                    conn.deadline = Instant::now() + self.config.keep_alive_timeout;
                    if conn.written == conn.out.len() {
                        self.finish_response(idx);
                        return;
                    }
                    if limit.is_some() {
                        // Torture knob: force the remainder onto a later
                        // readiness event so partial-write resumption is
                        // exercised deterministically.
                        self.set_interest(idx, sys::EPOLLOUT);
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.set_interest(idx, sys::EPOLLOUT);
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return;
                }
            }
        }
    }

    fn finish_response(&mut self, idx: u32) {
        let conn = self.slots[idx as usize].as_mut().expect("live conn");
        if conn.close_after {
            self.close(idx);
            return;
        }
        conn.out = Vec::new();
        conn.written = 0;
        conn.state = ConnState::Reading;
        conn.deadline = Instant::now() + self.config.keep_alive_timeout;
        // A pipelined next request may already be buffered in the parser.
        if self.try_dispatch(idx) {
            return;
        }
        if self.slots[idx as usize].is_some() {
            self.set_interest(idx, sys::EPOLLIN | sys::EPOLLRDHUP);
        }
    }

    // ---- completions and timers -------------------------------------------

    fn drain_completions(&mut self) {
        let drained: Vec<Completion> = {
            let mut queue = self.completions.lock().expect("completion queue poisoned");
            std::mem::take(&mut *queue)
        };
        for Completion {
            token,
            payload,
            close,
        } in drained
        {
            let Some(idx) = self.lookup(token) else {
                continue; // connection died while the engine worked
            };
            self.start_write(idx, payload, close);
        }
    }

    fn check_deadline(&mut self, gen: u32, idx: u32, now: Instant) {
        let Some(conn) = self
            .slots
            .get(idx as usize)
            .and_then(|slot| slot.as_ref())
            .filter(|conn| conn.gen == gen)
        else {
            return;
        };
        let deadline = conn.deadline;
        let state = conn.state;
        if state == ConnState::Dispatched || deadline > now {
            // Working, or activity moved the deadline: keep one wheel
            // entry alive for the connection.
            let next = if state == ConnState::Dispatched {
                now + self.config.keep_alive_timeout
            } else {
                deadline
            };
            self.wheel.insert(next, gen, idx);
            return;
        }
        // Idle past the deadline (or stalled mid-read/mid-write): reclaim.
        self.metrics.read_timeouts.inc();
        self.close(idx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_wheel_fires_once_per_entry_and_reinserts_never_loses() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start, Duration::from_secs(5));
        wheel.insert(start + Duration::from_millis(300), 1, 7);
        // Before the deadline's tick: nothing fires.
        assert!(wheel.advance(start + Duration::from_millis(100)).is_empty());
        // After: exactly the one entry.
        let fired = wheel.advance(start + Duration::from_millis(600));
        assert_eq!(fired, vec![(1, 7)]);
        // And it does not fire again.
        assert!(wheel.advance(start + Duration::from_secs(10)).is_empty());
    }

    #[test]
    fn timer_wheel_immediate_deadlines_land_on_an_undrained_tick() {
        let start = Instant::now();
        let mut wheel = TimerWheel::new(start, Duration::from_secs(1));
        let now = start + Duration::from_secs(3);
        wheel.advance(now);
        // A deadline in the past still fires (on the next tick).
        wheel.insert(now - Duration::from_secs(2), 0, 1);
        let fired = wheel.advance(now + TIMER_GRANULARITY * 2);
        assert_eq!(fired, vec![(0, 1)]);
    }

    #[test]
    fn tokens_round_trip_gen_and_index() {
        let token = Reactor::token(0xDEAD_BEEF, 0x1234_5678);
        assert_eq!((token >> 32) as u32, 0xDEAD_BEEF);
        assert_eq!(token as u32, 0x1234_5678);
    }
}
