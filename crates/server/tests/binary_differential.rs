//! Differential suite for the `GTBF1` binary wire format: a scripted
//! session served over binary frames must be **bit-identical** to the
//! same script over JSON and to an in-process engine, on both front-end
//! backends. Also pinned here, over real sockets:
//!
//! - the `Content-Type`/`Accept` negotiation matrix (which format the
//!   response comes back in, for every combination a client can send);
//! - corrupt and truncated binary bodies answered with *typed* 400
//!   envelopes in the negotiated format, without desyncing the
//!   keep-alive connection;
//! - the client's hand-spliced `Build`/`Batch` envelopes byte-identical
//!   to the derive-serialized path in both formats (the splice is live
//!   for every client build, so it must be provably the same bytes).

use grouptravel::prelude::*;
use grouptravel_engine::binary::{self, BINARY_CONTENT_TYPE};
use grouptravel_engine::{
    CommandRequest, Engine, EngineConfig, EngineError, EngineRequest, EngineResponse,
    PackageRequest, ProtocolError, RequestEnvelope, SessionCommand,
};
use grouptravel_server::client::EngineClient;
use grouptravel_server::{Backend, RunningServer, ServerConfig, WireFormat};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

const BACKENDS: [Backend; 2] = [Backend::Reactor, Backend::Blocking];

fn paris(seed: u64) -> PoiCatalog {
    SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(seed)).generate()
}

fn start_server(config: EngineConfig, backend: Backend) -> RunningServer {
    RunningServer::start(
        Arc::new(Engine::new(config)),
        ServerConfig {
            worker_threads: 4,
            backend,
            ..ServerConfig::default()
        },
    )
    .expect("bind an ephemeral port")
}

fn profile_for(engine: &Engine, seed: u64) -> GroupProfile {
    let schema = engine.profile_schema("Paris").unwrap();
    SyntheticGroupGenerator::new(schema, seed)
        .group(GroupSize::Small, Uniformity::NonUniform)
        .profile(ConsensusMethod::pairwise_disagreement())
}

fn package_request(engine: &Engine, session_id: u64, seed: u64) -> PackageRequest {
    PackageRequest {
        session_id,
        city: "Paris".to_string(),
        profile: profile_for(engine, seed),
        query: GroupQuery::paper_default(),
        config: BuildConfig::default(),
    }
}

/// Debug-renders an outcome with wall-clock noise removed (same
/// canonicalization as the JSON differential suite).
fn canonical(outcome: Result<grouptravel_engine::CommandOutcome, EngineError>) -> String {
    use grouptravel_engine::CommandOutcome;
    let outcome = outcome.map(|ok| match ok {
        CommandOutcome::Ended(mut state) => {
            state.total_latency = std::time::Duration::ZERO;
            state.step_latencies.clear();
            CommandOutcome::Ended(state)
        }
        other => other,
    });
    format!("{outcome:?}")
}

fn command_over_http(client: &EngineClient, request: CommandRequest) -> String {
    match client
        .request(EngineRequest::Command { request })
        .expect("transport works")
    {
        EngineResponse::Command { response } => canonical(response.outcome),
        other => panic!("expected Command, got {}", other.kind()),
    }
}

fn register(client: &EngineClient) {
    match client
        .request(EngineRequest::RegisterCatalog {
            catalog: Box::new(paris(11)),
        })
        .unwrap()
    {
        EngineResponse::Registered { outcome } => assert!(outcome.unwrap().lda_trained),
        other => panic!("expected Registered, got {}", other.kind()),
    }
}

// ---------------------------------------------------------------------------
// Scripted session: binary ≡ JSON ≡ in-process, on both backends
// ---------------------------------------------------------------------------

#[test]
fn scripted_session_over_binary_matches_json_and_in_process() {
    for backend in BACKENDS {
        scripted_session_matches(backend);
    }
}

fn scripted_session_matches(backend: Backend) {
    // Three engines with identical catalogs: one served to a binary
    // client, one to a JSON client, one driven in-process. Each runs the
    // same script once (commands mutate session state, so the served
    // engines cannot share).
    let binary_server = start_server(EngineConfig::fast(), backend);
    let json_server = start_server(EngineConfig::fast(), backend);
    let binary_client = EngineClient::with_wire_format(binary_server.addr(), WireFormat::Binary);
    let json_client = EngineClient::new(json_server.addr());
    assert_eq!(json_client.wire_format(), WireFormat::Json);
    register(&binary_client);
    register(&json_client);
    let reference = Engine::new(EngineConfig::fast());
    reference.register_catalog(paris(11)).unwrap();

    let profile = profile_for(&reference, 3);
    let build = |profile: GroupProfile| {
        CommandRequest::new(
            7,
            SessionCommand::build(
                "Paris",
                profile,
                GroupQuery::paper_default(),
                BuildConfig::default(),
            ),
        )
    };
    let ref_build = canonical(reference.serve_command(&build(profile.clone())).outcome);
    assert_eq!(
        command_over_http(&binary_client, build(profile.clone())),
        ref_build,
        "cold build must match over binary frames"
    );
    assert_eq!(
        command_over_http(&json_client, build(profile.clone())),
        ref_build,
        "cold build must match over JSON"
    );

    let package = reference
        .sessions()
        .snapshot(7)
        .unwrap()
        .last_package
        .unwrap();
    let script = vec![
        CommandRequest::from_member(
            7,
            1,
            SessionCommand::Customize(CustomizationOp::Remove {
                ci_index: 0,
                poi: package.get(0).unwrap().poi_ids()[0],
            }),
        ),
        CommandRequest::new(
            7,
            SessionCommand::SuggestReplacement {
                ci_index: 2,
                poi: package.get(2).unwrap().poi_ids()[0],
            },
        ),
        CommandRequest::new(7, SessionCommand::Refine(RefinementStrategy::Batch)),
        CommandRequest::new(
            7,
            SessionCommand::rebuild("Paris", GroupQuery::paper_default(), BuildConfig::default()),
        ),
        CommandRequest::new(7, SessionCommand::End),
    ];
    for request in script {
        let reference_outcome = canonical(reference.serve_command(&request).outcome);
        assert_eq!(
            command_over_http(&binary_client, request.clone()),
            reference_outcome,
            "step must be bit-identical over binary frames"
        );
        assert_eq!(
            command_over_http(&json_client, request.clone()),
            reference_outcome,
            "step must be bit-identical over JSON"
        );
    }

    // Identical model work everywhere: the encoding changed, never the
    // dispatch effects.
    let ref_stats = reference.stats();
    for server in [&binary_server, &json_server] {
        let stats = server.engine().stats();
        assert_eq!(stats.fcm_trainings, ref_stats.fcm_trainings);
        assert_eq!(stats.lda_trainings, ref_stats.lda_trainings);
    }
    binary_server.stop();
    json_server.stop();
}

// ---------------------------------------------------------------------------
// Raw-socket plumbing for negotiation and desync tests
// ---------------------------------------------------------------------------

/// Frames one `POST /v1/engine` with explicit (possibly absent)
/// `Content-Type`/`Accept` headers.
fn raw_request(content_type: Option<&str>, accept: Option<&str>, body: &[u8]) -> Vec<u8> {
    let mut head = format!(
        "POST /v1/engine HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n",
        body.len()
    );
    if let Some(ct) = content_type {
        head.push_str(&format!("Content-Type: {ct}\r\n"));
    }
    if let Some(accept) = accept {
        head.push_str(&format!("Accept: {accept}\r\n"));
    }
    head.push_str("\r\n");
    let mut frame = head.into_bytes();
    frame.extend_from_slice(body);
    frame
}

/// Reads one `Content-Length`-framed response off the stream.
fn read_raw(reader: &mut BufReader<TcpStream>) -> (u16, String, Vec<u8>) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).unwrap();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .expect("status line has a code")
        .parse()
        .unwrap();
    let mut content_type = String::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            match name.to_ascii_lowercase().as_str() {
                "content-type" => content_type = value.trim().to_string(),
                "content-length" => content_length = value.trim().parse().unwrap(),
                _ => {}
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).unwrap();
    (status, content_type, body)
}

fn decode_stats(format: WireFormat, body: &[u8]) -> grouptravel_engine::EngineStats {
    let envelope: grouptravel_engine::ResponseEnvelope = match format {
        WireFormat::Json => serde_json::from_slice(body).expect("JSON response envelope"),
        WireFormat::Binary => binary::decode(body).expect("GTBF response envelope"),
    };
    match envelope.response {
        EngineResponse::Stats { stats } => stats,
        other => panic!("expected Stats, got {}", other.kind()),
    }
}

fn stats_body(format: WireFormat) -> Vec<u8> {
    let envelope = RequestEnvelope::new(EngineRequest::Stats);
    match format {
        WireFormat::Json => serde_json::to_vec(&envelope).unwrap(),
        WireFormat::Binary => binary::encode(&envelope),
    }
}

// ---------------------------------------------------------------------------
// Negotiation matrix
// ---------------------------------------------------------------------------

#[test]
fn content_negotiation_matrix_holds_on_both_backends() {
    use WireFormat::{Binary, Json};
    const JSON_CT: &str = "application/json";
    // (request Content-Type, Accept) → (decode request as, response format)
    let matrix: [(Option<&str>, Option<&str>, WireFormat, WireFormat); 7] = [
        (Some(JSON_CT), None, Json, Json),
        (None, None, Json, Json),
        (Some(BINARY_CONTENT_TYPE), None, Binary, Binary),
        (
            Some(BINARY_CONTENT_TYPE),
            Some(BINARY_CONTENT_TYPE),
            Binary,
            Binary,
        ),
        (Some(BINARY_CONTENT_TYPE), Some(JSON_CT), Binary, Json),
        (Some(JSON_CT), Some(BINARY_CONTENT_TYPE), Json, Binary),
        (None, Some(BINARY_CONTENT_TYPE), Json, Binary),
    ];
    for backend in BACKENDS {
        let server = start_server(EngineConfig::fast(), backend);
        for (content_type, accept, request_format, response_format) in matrix {
            let mut stream = TcpStream::connect(server.addr()).unwrap();
            stream
                .write_all(&raw_request(
                    content_type,
                    accept,
                    &stats_body(request_format),
                ))
                .unwrap();
            let mut reader = BufReader::new(stream);
            let (status, got_content_type, body) = read_raw(&mut reader);
            assert_eq!(
                status, 200,
                "{backend:?} CT={content_type:?} Accept={accept:?} must be served"
            );
            assert_eq!(
                got_content_type,
                response_format.content_type(),
                "{backend:?} CT={content_type:?} Accept={accept:?} negotiated the wrong response format"
            );
            // The body really is in the advertised format.
            decode_stats(response_format, &body);
        }
        server.stop();
    }
}

// ---------------------------------------------------------------------------
// Corrupt frames: typed 400s, no keep-alive desync
// ---------------------------------------------------------------------------

fn expect_protocol_error(format: WireFormat, body: &[u8], code: u16) {
    let envelope: grouptravel_engine::ResponseEnvelope = match format {
        WireFormat::Json => serde_json::from_slice(body).expect("JSON rejection envelope"),
        WireFormat::Binary => binary::decode(body).expect("GTBF rejection envelope"),
    };
    let error = envelope
        .response
        .protocol_error()
        .expect("a rejection carries a protocol error")
        .clone();
    assert_eq!(error.code, code, "wrong stable code: {}", error.message);
}

#[test]
fn corrupt_binary_bodies_get_typed_400s_without_desyncing_the_connection() {
    let good = stats_body(WireFormat::Binary);
    let mut wrong_version = good.clone();
    wrong_version[4] = 9;
    let truncated = &good[..good.len() - 1];
    let cases: [(&[u8], u16); 5] = [
        (truncated, ProtocolError::MALFORMED_REQUEST),
        (b"JUNK-NOT-A-FRAME", ProtocolError::MALFORMED_REQUEST),
        // Real magic, bogus version byte: the version error, not a shapeless one.
        (&wrong_version, ProtocolError::UNSUPPORTED_VERSION),
        (b"GTBF\x20pretender", ProtocolError::UNSUPPORTED_VERSION),
        (b"", ProtocolError::MALFORMED_REQUEST),
    ];
    for backend in BACKENDS {
        let server = start_server(EngineConfig::fast(), backend);
        for (bad_body, code) in cases {
            // Pipeline the corrupt frame and a good one in a single burst
            // on one connection: the bad body must be consumed exactly
            // (Content-Length framing, not frame content, delimits it) so
            // the good request right behind it still parses.
            let stream = TcpStream::connect(server.addr()).unwrap();
            let mut burst = raw_request(Some(BINARY_CONTENT_TYPE), None, bad_body);
            burst.extend_from_slice(&raw_request(Some(BINARY_CONTENT_TYPE), None, &good));
            let mut writer = stream.try_clone().unwrap();
            writer.write_all(&burst).unwrap();
            let mut reader = BufReader::new(stream);

            // Bad frame → typed 400 in the negotiated (binary) format…
            let (status, content_type, body) = read_raw(&mut reader);
            assert_eq!(status, 400, "{backend:?}: corrupt frames are 400s");
            assert_eq!(content_type, BINARY_CONTENT_TYPE);
            expect_protocol_error(WireFormat::Binary, &body, code);

            // …and the *same connection* keeps serving: the parser never
            // desyncs on a rejected body.
            let (status, content_type, body) = read_raw(&mut reader);
            assert_eq!(status, 200, "{backend:?}: connection must survive a 400");
            assert_eq!(content_type, BINARY_CONTENT_TYPE);
            decode_stats(WireFormat::Binary, &body);
        }
        server.stop();
    }
}

#[test]
fn binary_rejections_can_come_back_as_json_when_asked() {
    // A binary sender with `Accept: application/json` gets its rejection
    // in JSON — negotiation applies to errors too.
    let server = start_server(EngineConfig::fast(), Backend::Reactor);
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(&raw_request(
            Some(BINARY_CONTENT_TYPE),
            Some("application/json"),
            b"not even close to a frame",
        ))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let (status, content_type, body) = read_raw(&mut reader);
    assert_eq!(status, 400);
    assert_eq!(content_type, "application/json");
    expect_protocol_error(WireFormat::Json, &body, ProtocolError::MALFORMED_REQUEST);
    server.stop();
}

// ---------------------------------------------------------------------------
// Client splice ≡ derive: the hand-assembled envelopes are the same bytes
// ---------------------------------------------------------------------------

#[test]
fn client_spliced_envelopes_are_byte_identical_to_derive_in_both_formats() {
    // The client hand-splices Build/Batch envelopes around interned
    // profile fragments — for *all* traffic, not just binary — so the
    // splice must produce exactly the bytes the derive path would.
    let engine = Engine::new(EngineConfig::fast());
    engine.register_catalog(paris(11)).unwrap();
    let dummy_addr = "127.0.0.1:9".parse().unwrap();
    for format in [WireFormat::Json, WireFormat::Binary] {
        let client = EngineClient::with_wire_format(dummy_addr, format);
        let derive = |request: &EngineRequest| match format {
            WireFormat::Json => serde_json::to_vec(&RequestEnvelope::new(request.clone())).unwrap(),
            WireFormat::Binary => binary::encode(&RequestEnvelope::new(request.clone())),
        };
        for seed in [1u64, 2, 3, 17, 91] {
            // Build, twice per profile: the second hits the interned
            // fragment and must still be the same bytes.
            let build = EngineRequest::Build {
                request: Box::new(package_request(&engine, seed, seed)),
            };
            for pass in 0..2 {
                assert_eq!(
                    client.encode_envelope(build.clone()),
                    derive(&build),
                    "{format:?} seed {seed} pass {pass}: spliced Build must equal derive"
                );
            }
            // Batch mixing a repeated profile with a fresh one: exercises
            // both the interned hit and the LRU-1 repopulation.
            let batch = EngineRequest::Batch {
                requests: vec![
                    package_request(&engine, seed, seed),
                    package_request(&engine, seed + 1, seed + 100),
                    package_request(&engine, seed + 2, seed),
                ],
            };
            assert_eq!(
                client.encode_envelope(batch.clone()),
                derive(&batch),
                "{format:?} seed {seed}: spliced Batch must equal derive"
            );
        }
        // The non-spliced path too, for completeness.
        let stats = EngineRequest::Stats;
        assert_eq!(client.encode_envelope(stats.clone()), derive(&stats));
    }
}
