//! End-to-end differential suite for the HTTP front-end: a scripted
//! interactive session driven through the HTTP/JSON facade must be
//! **bit-identical** to the same script served by an in-process engine —
//! same packages, same profiles, same suggestions, same typed errors with
//! the same stable codes. The wire adds a transport, never different
//! answers.
//!
//! Also proven here, over real sockets: N concurrent identical cold build
//! requests perform exactly one FCM training (and one LDA training at
//! registration) — the engine's single-flight caches coalesce the
//! stampede the front-end funnels in.

use grouptravel::prelude::*;
use grouptravel_engine::{
    CommandRequest, Engine, EngineConfig, EngineError, EngineRequest, EngineResponse,
    PackageRequest, SessionCommand,
};
use grouptravel_server::client::EngineClient;
use grouptravel_server::{Backend, RunningServer, ServerConfig};
use std::sync::Arc;

/// Every test here runs against both front-ends: the epoll reactor and
/// the blocking worker pool must be indistinguishable on the wire.
const BACKENDS: [Backend; 2] = [Backend::Reactor, Backend::Blocking];

fn paris(seed: u64) -> PoiCatalog {
    SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(seed)).generate()
}

fn start_server(config: EngineConfig, backend: Backend) -> RunningServer {
    RunningServer::start(
        Arc::new(Engine::new(config)),
        ServerConfig {
            worker_threads: 4,
            backend,
            ..ServerConfig::default()
        },
    )
    .expect("bind an ephemeral port")
}

fn profile_for(engine: &Engine, seed: u64) -> GroupProfile {
    let schema = engine.profile_schema("Paris").unwrap();
    SyntheticGroupGenerator::new(schema, seed)
        .group(GroupSize::Small, Uniformity::NonUniform)
        .profile(ConsensusMethod::pairwise_disagreement())
}

/// Debug-renders an outcome with wall-clock noise removed: latencies are
/// measurements of *this run*, not part of the answer, so `Ended` session
/// states compare with them zeroed. Everything else — packages, profiles,
/// suggestions, counters, typed errors — must match bit-for-bit.
fn canonical(outcome: Result<grouptravel_engine::CommandOutcome, EngineError>) -> String {
    use grouptravel_engine::CommandOutcome;
    let outcome = outcome.map(|ok| match ok {
        CommandOutcome::Ended(mut state) => {
            state.total_latency = std::time::Duration::ZERO;
            state.step_latencies.clear();
            CommandOutcome::Ended(state)
        }
        other => other,
    });
    format!("{outcome:?}")
}

/// Sends one command over the wire and returns its canonical outcome.
fn command_over_http(client: &EngineClient, request: CommandRequest) -> String {
    match client
        .request(EngineRequest::Command { request })
        .expect("transport works")
    {
        EngineResponse::Command { response } => canonical(response.outcome),
        other => panic!("expected Command, got {}", other.kind()),
    }
}

#[test]
fn scripted_session_over_http_is_bit_identical_to_in_process() {
    for backend in BACKENDS {
        scripted_session_matches_in_process(backend);
    }
}

fn scripted_session_matches_in_process(backend: Backend) {
    // The served engine learns its catalog over the wire; the reference
    // engine in-process. Identical content + config ⇒ identical substrate.
    let server = start_server(EngineConfig::fast(), backend);
    let client = EngineClient::new(server.addr());
    match client
        .request(EngineRequest::RegisterCatalog {
            catalog: Box::new(paris(11)),
        })
        .unwrap()
    {
        EngineResponse::Registered { outcome } => {
            assert!(outcome.unwrap().lda_trained);
        }
        other => panic!("expected Registered, got {}", other.kind()),
    }
    let reference = Engine::new(EngineConfig::fast());
    reference.register_catalog(paris(11)).unwrap();

    // One profile, derived from the reference engine's schema (the served
    // engine's schema is identical by construction — same catalog, same
    // LDA configuration).
    let profile = profile_for(&reference, 3);

    // Build, then derive the rest of the script from the built package.
    let build = |profile: GroupProfile| {
        CommandRequest::new(
            7,
            SessionCommand::build(
                "Paris",
                profile,
                GroupQuery::paper_default(),
                BuildConfig::default(),
            ),
        )
    };
    let http_build = command_over_http(&client, build(profile.clone()));
    let ref_build = canonical(reference.serve_command(&build(profile)).outcome);
    assert_eq!(http_build, ref_build, "cold build must match over the wire");

    let package = reference
        .sessions()
        .snapshot(7)
        .unwrap()
        .last_package
        .unwrap();
    let script = vec![
        CommandRequest::from_member(
            7,
            1,
            SessionCommand::Customize(CustomizationOp::Remove {
                ci_index: 0,
                poi: package.get(0).unwrap().poi_ids()[0],
            }),
        ),
        CommandRequest::from_member(
            7,
            2,
            SessionCommand::Customize(CustomizationOp::Add {
                ci_index: 1,
                poi: package.get(0).unwrap().poi_ids()[0],
            }),
        ),
        CommandRequest::new(
            7,
            SessionCommand::SuggestReplacement {
                ci_index: 2,
                poi: package.get(2).unwrap().poi_ids()[0],
            },
        ),
        CommandRequest::new(7, SessionCommand::Refine(RefinementStrategy::Batch)),
        CommandRequest::new(
            7,
            SessionCommand::rebuild("Paris", GroupQuery::paper_default(), BuildConfig::default()),
        ),
        CommandRequest::new(7, SessionCommand::End),
    ];
    for request in script {
        let http_outcome = command_over_http(&client, request.clone());
        let ref_outcome = canonical(reference.serve_command(&request).outcome);
        assert_eq!(
            http_outcome, ref_outcome,
            "step must be bit-identical over the wire"
        );
    }

    // The served engine did the same amount of model work as the
    // reference: the wire added a transport, not trainings.
    let stats = server.engine().stats();
    let ref_stats = reference.stats();
    assert_eq!(stats.fcm_trainings, ref_stats.fcm_trainings);
    assert_eq!(stats.lda_trainings, ref_stats.lda_trainings);
    server.stop();
}

#[test]
fn unknown_session_after_eviction_surfaces_the_same_code_over_http() {
    for backend in BACKENDS {
        eviction_code_matches_in_process(backend);
    }
}

fn eviction_code_matches_in_process(backend: Backend) {
    // Both engines: room for two sessions, so a third build evicts the
    // first.
    let config = EngineConfig {
        max_sessions: 2,
        ..EngineConfig::fast()
    };
    let server = start_server(config, backend);
    let client = EngineClient::new(server.addr());
    client
        .request(EngineRequest::RegisterCatalog {
            catalog: Box::new(paris(11)),
        })
        .unwrap();
    let in_process = Engine::new(config);
    in_process.register_catalog(paris(11)).unwrap();

    let build = |session: u64, seed: u64| {
        CommandRequest::new(
            session,
            SessionCommand::build(
                "Paris",
                profile_for(&in_process, seed),
                GroupQuery::paper_default(),
                BuildConfig::default(),
            ),
        )
    };
    for session in 1..=4u64 {
        command_over_http(&client, build(session, session));
        in_process.serve_command(&build(session, session));
    }
    let customize = CommandRequest::new(
        1,
        SessionCommand::Customize(CustomizationOp::DeleteCi { ci_index: 0 }),
    );

    // In-process: the typed error and its stable code.
    let expected = in_process.serve_command(&customize).outcome.unwrap_err();
    assert_eq!(expected, EngineError::UnknownSession(1));
    assert_eq!(expected.code(), 2);

    // Over HTTP: the decoded error is the same typed value…
    let response = client
        .request(EngineRequest::Command {
            request: customize.clone(),
        })
        .unwrap();
    match response {
        EngineResponse::Command { response } => {
            assert_eq!(response.outcome.unwrap_err(), expected);
        }
        other => panic!("expected Command, got {}", other.kind()),
    }
    // …and the raw wire body carries the same numeric code verbatim.
    let body = serde_json::to_string(&grouptravel_engine::RequestEnvelope::new(
        EngineRequest::Command { request: customize },
    ))
    .unwrap();
    let (status, raw) = client.http("POST", "/v1/engine", Some(&body)).unwrap();
    assert_eq!(status, 200, "application errors are served, not 4xx");
    assert!(
        raw.contains(&format!("\"code\":{}", expected.code())),
        "wire error body must carry the stable code; got: {raw}"
    );
    assert!(
        raw.contains(&expected.to_string()),
        "wire error body must carry the Display message verbatim"
    );
    server.stop();
}

#[test]
fn concurrent_cold_builds_over_http_train_exactly_once() {
    for backend in BACKENDS {
        concurrent_cold_builds_coalesce(backend);
    }
}

fn concurrent_cold_builds_coalesce(backend: Backend) {
    let server = start_server(
        EngineConfig {
            worker_threads: 8,
            ..EngineConfig::fast()
        },
        backend,
    );
    let client = EngineClient::new(server.addr());

    // Concurrent identical registrations: one LDA training.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let client = client.clone();
            scope.spawn(move || {
                client
                    .request(EngineRequest::RegisterCatalog {
                        catalog: Box::new(paris(11)),
                    })
                    .unwrap();
            });
        }
    });

    // Concurrent identical cold builds: one FCM training.
    let profile = profile_for(server.engine(), 1);
    std::thread::scope(|scope| {
        for session_id in 0..8u64 {
            let client = client.clone();
            let profile = profile.clone();
            scope.spawn(move || {
                let response = client
                    .request(EngineRequest::Build {
                        request: Box::new(PackageRequest {
                            session_id,
                            city: "Paris".to_string(),
                            profile,
                            query: GroupQuery::paper_default(),
                            config: BuildConfig::default(),
                        }),
                    })
                    .unwrap();
                match response {
                    EngineResponse::Package { response } => {
                        assert!(response.outcome.is_ok(), "build must succeed");
                    }
                    other => panic!("expected Package, got {}", other.kind()),
                }
            });
        }
    });

    // Read the counters back through the wire.
    let stats = match client.request(EngineRequest::Stats).unwrap() {
        EngineResponse::Stats { stats } => stats,
        other => panic!("expected Stats, got {}", other.kind()),
    };
    assert_eq!(stats.requests, 8);
    assert_eq!(
        stats.fcm_trainings, 1,
        "8 concurrent identical cold builds over HTTP must train FCM once"
    );
    assert_eq!(
        stats.lda_trainings, 1,
        "4 concurrent identical registrations over HTTP must train LDA once"
    );
    server.stop();
}
