//! CI smoke: boot the HTTP front-end on an ephemeral port, drive one cold
//! build, one warm customize, and `/stats` through real sockets, and
//! assert nothing answers 5xx. Fast by construction — one small catalog,
//! a handful of requests — so it runs on every push.

use grouptravel::prelude::*;
use grouptravel_engine::{
    CommandRequest, Engine, EngineConfig, EngineRequest, RequestEnvelope, SessionCommand,
};
use grouptravel_server::client::EngineClient;
use grouptravel_server::{RunningServer, ServerConfig};
use std::sync::Arc;

fn post_engine(client: &EngineClient, request: EngineRequest) -> (u16, String) {
    let body = serde_json::to_string(&RequestEnvelope::new(request)).unwrap();
    client.http("POST", "/v1/engine", Some(&body)).unwrap()
}

#[test]
fn cold_build_warm_customize_and_stats_answer_non_5xx() {
    let server = RunningServer::start(
        Arc::new(Engine::new(EngineConfig::fast())),
        ServerConfig {
            worker_threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind an ephemeral port");
    let client = EngineClient::new(server.addr());
    let mut statuses = Vec::new();

    // Health first.
    let (status, body) = client.http("GET", "/healthz", None).unwrap();
    assert!(body.contains("\"ok\""));
    statuses.push(("GET /healthz", status));

    // Register the city over the wire.
    let catalog =
        SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(7)).generate();
    let (status, _) = post_engine(
        &client,
        EngineRequest::RegisterCatalog {
            catalog: Box::new(catalog),
        },
    );
    statuses.push(("POST RegisterCatalog", status));

    // One cold interactive build…
    let schema = server.engine().profile_schema("Paris").expect("registered");
    let profile = SyntheticGroupGenerator::new(schema, 1)
        .group(GroupSize::Small, Uniformity::Uniform)
        .profile(ConsensusMethod::pairwise_disagreement());
    let (status, body) = post_engine(
        &client,
        EngineRequest::Command {
            request: CommandRequest::new(
                1,
                SessionCommand::build(
                    "Paris",
                    profile,
                    GroupQuery::paper_default(),
                    BuildConfig::default(),
                ),
            ),
        },
    );
    assert!(body.contains("\"Ok\""), "cold build must succeed: {body}");
    statuses.push(("POST Command(Build)", status));

    // …then a warm customize against the session the build created.
    let package = server
        .engine()
        .sessions()
        .snapshot(1)
        .unwrap()
        .last_package
        .unwrap();
    let victim = package.get(0).unwrap().poi_ids()[0];
    let (status, body) = post_engine(
        &client,
        EngineRequest::Command {
            request: CommandRequest::new(
                1,
                SessionCommand::Customize(CustomizationOp::Remove {
                    ci_index: 0,
                    poi: victim,
                }),
            ),
        },
    );
    assert!(
        body.contains("\"Ok\""),
        "warm customize must succeed: {body}"
    );
    statuses.push(("POST Command(Customize)", status));

    // Stats over both routes.
    let (status, body) = client.http("GET", "/stats", None).unwrap();
    assert!(body.contains("\"fcm_trainings\""));
    statuses.push(("GET /stats", status));
    let (status, _) = post_engine(&client, EngineRequest::Stats);
    statuses.push(("POST Stats", status));

    for (what, status) in statuses {
        assert!(
            status < 500,
            "{what} answered {status}; the smoke gate is non-5xx"
        );
        assert_eq!(status, 200, "{what} should in fact be a clean 200");
    }
    server.stop();
}
