//! The `/metrics` scrape surface, end to end: a scripted cold + warm
//! session over real sockets, then a scrape that must parse as Prometheus
//! text exposition, agree with `/stats`, and stay monotone across scrapes.
//! Also pins the traced-request wire shape, the versioned `/healthz`, and
//! the `/slowlog` NDJSON body.

use grouptravel::prelude::*;
use grouptravel_engine::{
    CommandRequest, Engine, EngineConfig, EngineRequest, RequestEnvelope, SessionCommand,
};
use grouptravel_server::client::EngineClient;
use grouptravel_server::{RunningServer, ServerConfig, WireFormat};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::Arc;
use std::time::Duration;

fn post_engine(client: &EngineClient, request: EngineRequest) -> (u16, String) {
    let body = serde_json::to_string(&RequestEnvelope::new(request)).unwrap();
    client.http("POST", "/v1/engine", Some(&body)).unwrap()
}

fn build_command(server: &RunningServer, session_id: u64, seed: u64) -> EngineRequest {
    let schema = server.engine().profile_schema("Paris").expect("registered");
    let profile = SyntheticGroupGenerator::new(schema, seed)
        .group(GroupSize::Small, Uniformity::Uniform)
        .profile(ConsensusMethod::pairwise_disagreement());
    EngineRequest::Command {
        request: CommandRequest::new(
            session_id,
            SessionCommand::build(
                "Paris",
                profile,
                GroupQuery::paper_default(),
                BuildConfig::default(),
            ),
        ),
    }
}

/// Strict shape check over a text exposition. Returns sample name (with
/// labels) → value. Panics on anything a Prometheus scraper would reject:
/// samples without a `# TYPE`, duplicate series, non-numeric values,
/// non-cumulative histogram buckets.
fn parse_exposition(text: &str) -> HashMap<String, f64> {
    let mut typed: HashMap<&str, &str> = HashMap::new();
    let mut samples: HashMap<String, f64> = HashMap::new();
    let mut last_bucket: HashMap<String, f64> = HashMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            let (keyword, name) = (parts.next().unwrap(), parts.next().unwrap_or(""));
            assert!(
                keyword == "HELP" || keyword == "TYPE",
                "unknown comment keyword in `{line}`"
            );
            assert!(!name.is_empty(), "comment without a metric name: `{line}`");
            if keyword == "TYPE" {
                let kind = parts.next().unwrap_or("");
                assert!(
                    ["counter", "gauge", "histogram"].contains(&kind),
                    "bad TYPE in `{line}`"
                );
                assert!(
                    typed.insert(name, kind).is_none(),
                    "metric `{name}` TYPEd twice"
                );
            }
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .expect("sample lines are `name value`");
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric sample value in `{line}`"));
        // The family name: strip the label set, then any histogram suffix.
        let base = series.split('{').next().unwrap();
        let family = base
            .strip_suffix("_bucket")
            .or_else(|| base.strip_suffix("_sum"))
            .or_else(|| base.strip_suffix("_count"))
            .filter(|f| typed.contains_key(f))
            .unwrap_or(base);
        let kind = *typed
            .get(family)
            .unwrap_or_else(|| panic!("sample `{series}` has no # TYPE"));
        if kind == "histogram" && base.ends_with("_bucket") {
            // Buckets are cumulative within one labelled series; key the
            // ladder by the series with its `le` label cut out.
            let start = series.find("le=\"").expect("buckets carry an le label");
            let end = start + 4 + series[start + 4..].find('"').unwrap();
            let key = format!("{}{}", &series[..start], &series[end + 1..]);
            let prev = last_bucket.entry(key).or_insert(0.0);
            assert!(
                value >= *prev,
                "bucket counts must be cumulative at `{line}`"
            );
            *prev = value;
        }
        assert!(
            samples.insert(series.to_string(), value).is_none(),
            "duplicate series `{series}`"
        );
    }
    samples
}

fn sample(samples: &HashMap<String, f64>, series: &str) -> f64 {
    *samples
        .get(series)
        .unwrap_or_else(|| panic!("series `{series}` missing from scrape"))
}

/// One raw HTTP exchange, returning (status line, headers, body) — the
/// typed client hides headers, and `/metrics` must carry the exposition
/// content type.
fn raw_get(addr: std::net::SocketAddr, path: &str) -> (String, String, String) {
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").unwrap();
    let (status_line, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    (
        status_line.to_string(),
        headers.to_string(),
        body.to_string(),
    )
}

#[test]
fn a_scripted_session_yields_a_consistent_monotone_scrape() {
    // Explicit thread budgets so the pool series have known values; the
    // block-Gibbs sampler makes the cold LDA training fan out too.
    let engine = Arc::new(Engine::new(EngineConfig {
        worker_threads: 2,
        train_threads: 2,
        lda: grouptravel_topics::LdaConfig {
            sampler: grouptravel_topics::LdaSampler::BlockGibbsV1,
            ..EngineConfig::fast().lda
        },
        ..EngineConfig::fast()
    }));
    let server = RunningServer::start(
        Arc::clone(&engine),
        ServerConfig {
            worker_threads: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind an ephemeral port");
    let client = EngineClient::new(server.addr());

    // Script: register, one cold build (trains FCM + LDA), one warm build
    // in a second session (clustering cache hit), one customize. Track the
    // exact payload bytes on both directions so the scrape's
    // `gt_http_bytes_total` series reconcile to the byte.
    let mut sent_bytes = 0u64;
    let mut received_bytes = 0u64;
    let mut post_counted = |request: EngineRequest| -> (u16, String) {
        let body = serde_json::to_string(&RequestEnvelope::new(request)).unwrap();
        sent_bytes += body.len() as u64;
        let (status, response) = client.http("POST", "/v1/engine", Some(&body)).unwrap();
        received_bytes += response.len() as u64;
        (status, response)
    };
    let catalog =
        SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(7)).generate();
    let (status, _) = post_counted(EngineRequest::RegisterCatalog {
        catalog: Box::new(catalog),
    });
    assert_eq!(status, 200);
    let (_, body) = post_counted(build_command(&server, 1, 1));
    assert!(body.contains("\"Ok\""), "cold build must succeed: {body}");
    let (_, body) = post_counted(build_command(&server, 2, 1));
    assert!(body.contains("\"Ok\""), "warm build must succeed: {body}");
    let (_, body) = post_counted(EngineRequest::Command {
        request: CommandRequest::new(2, SessionCommand::End),
    });
    assert!(body.contains("\"Ended\""), "end must succeed: {body}");

    // Scrape. The body must parse strictly and carry the exposition type.
    let (status_line, headers, text) = raw_get(server.addr(), "/metrics");
    assert!(status_line.contains("200"), "scrape failed: {status_line}");
    assert!(
        headers.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"),
        "missing exposition content type in: {headers}"
    );
    let first = parse_exposition(&text);

    // The scrape surface agrees with the stats surface.
    let stats = engine.stats();
    let clustering_hits = sample(
        &first,
        "gt_model_cache_events_total{cache=\"clustering\",event=\"hit\"}",
    ) + sample(
        &first,
        "gt_model_cache_events_total{cache=\"clustering\",event=\"coalesced_wait\"}",
    );
    assert_eq!(clustering_hits as u64, stats.clustering_cache_hits);
    assert_eq!(stats.clustering_cache_hits, 1, "the warm build hit");
    assert_eq!(
        sample(
            &first,
            "gt_model_cache_events_total{cache=\"clustering\",event=\"miss\"}"
        ) as u64,
        stats.fcm_trainings
    );
    assert_eq!(
        sample(
            &first,
            "gt_model_cache_events_total{cache=\"vectorizer\",event=\"miss\"}"
        ) as u64,
        stats.lda_trainings
    );
    assert_eq!(
        sample(&first, "gt_fcm_train_seconds_count") as u64,
        stats.fcm_trainings
    );

    // The shared worker pool's series agree with the stats surface. The
    // thread gauges report the budgets the engine resolved at
    // construction (`train_threads` may differ from the config under a
    // `GT_TRAIN_THREADS` override — stats and scrape must still agree).
    assert_eq!(sample(&first, "gt_worker_threads") as u64, 2);
    assert_eq!(
        sample(&first, "gt_train_threads") as u64,
        stats.train_threads as u64
    );
    let pool_tasks: f64 = ["serve", "command", "fcm_train", "lda_train", "other"]
        .iter()
        .map(|kind| sample(&first, &format!("gt_pool_tasks_total{{kind=\"{kind}\"}}")))
        .sum();
    assert_eq!(pool_tasks as u64, stats.pool_tasks);
    assert_eq!(
        sample(&first, "gt_pool_steals_total") as u64,
        stats.pool_steals
    );
    if stats.train_threads > 1 {
        assert!(
            sample(&first, "gt_pool_tasks_total{kind=\"fcm_train\"}") >= 1.0,
            "a parallel cold FCM training must spawn pool tasks"
        );
        assert!(
            sample(&first, "gt_pool_tasks_total{kind=\"lda_train\"}") >= 1.0,
            "a parallel block-Gibbs LDA training must spawn pool tasks"
        );
    }
    // Queue depth is a live gauge; after the script drained it reads 0.
    assert_eq!(sample(&first, "gt_pool_queue_depth"), 0.0);

    // Command latency covers the script's interactive commands.
    assert_eq!(
        sample(&first, "gt_command_latency_seconds_count{kind=\"build\"}"),
        2.0
    );
    assert_eq!(
        sample(&first, "gt_command_latency_seconds_count{kind=\"end\"}"),
        1.0
    );

    // The HTTP layer's own series are on the same surface. The scripted
    // POSTs all spoke JSON, so they land on the `format="json"` series.
    assert!(
        sample(
            &first,
            "gt_http_request_seconds_count{route=\"/v1/engine\",format=\"json\"}"
        ) >= 4.0,
        "every scripted POST was timed"
    );
    assert!(sample(&first, "gt_http_connections_total") >= 1.0);

    // Byte accounting reconciles exactly: `in` is the scripted POST
    // bodies (the scrape GET itself contributed zero), `out` is their four
    // response bodies — a scrape's own response is counted only after it
    // renders, so it is not in its own exposition. Nothing spoke binary.
    assert_eq!(
        sample(&first, "gt_http_bytes_total{dir=\"in\",format=\"json\"}") as u64,
        sent_bytes,
        "request bytes must reconcile with what the client sent"
    );
    assert_eq!(
        sample(&first, "gt_http_bytes_total{dir=\"out\",format=\"json\"}") as u64,
        received_bytes,
        "response bytes must reconcile with what the client received"
    );
    assert_eq!(
        sample(&first, "gt_http_bytes_total{dir=\"in\",format=\"binary\"}"),
        0.0
    );
    assert_eq!(
        sample(&first, "gt_http_bytes_total{dir=\"out\",format=\"binary\"}"),
        0.0
    );

    // A second scrape is monotone on every counter and bucket.
    let (_, _, text) = raw_get(server.addr(), "/metrics");
    let second = parse_exposition(&text);
    let monotone_keys: Vec<&String> = first
        .keys()
        .filter(|k| k.contains("_total") || k.contains("_count") || k.contains("_bucket"))
        .collect();
    assert!(!monotone_keys.is_empty());
    for key in monotone_keys {
        assert!(
            sample(&second, key) >= first[key],
            "series `{key}` went backwards between scrapes"
        );
    }
    // The scrape itself was counted the second time around.
    assert!(
        sample(
            &second,
            "gt_http_request_seconds_count{route=\"/metrics\",format=\"json\"}"
        ) > sample(
            &first,
            "gt_http_request_seconds_count{route=\"/metrics\",format=\"json\"}"
        )
    );

    // One binary request moves the binary series — and only those — on
    // both directions plus the binary latency count.
    let binary_client = EngineClient::with_wire_format(server.addr(), WireFormat::Binary);
    binary_client
        .request(EngineRequest::Stats)
        .expect("a binary Stats request answers");
    let (_, _, text) = raw_get(server.addr(), "/metrics");
    let third = parse_exposition(&text);
    assert!(
        sample(&third, "gt_http_bytes_total{dir=\"in\",format=\"binary\"}") > 0.0,
        "the binary request body must count under format=\"binary\""
    );
    assert!(
        sample(&third, "gt_http_bytes_total{dir=\"out\",format=\"binary\"}") > 0.0,
        "the binary response body must count under format=\"binary\""
    );
    assert_eq!(
        sample(
            &third,
            "gt_http_request_seconds_count{route=\"/v1/engine\",format=\"binary\"}"
        ),
        1.0
    );
    assert_eq!(
        sample(&third, "gt_http_bytes_total{dir=\"in\",format=\"json\"}") as u64,
        sent_bytes,
        "the binary request must not leak into the json series"
    );

    server.stop();
}

#[test]
fn traced_requests_return_a_stage_timeline_over_the_wire() {
    let server = RunningServer::start(
        Arc::new(Engine::new(EngineConfig::fast())),
        ServerConfig::default(),
    )
    .expect("bind an ephemeral port");
    let client = EngineClient::new(server.addr());
    let catalog =
        SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(7)).generate();
    let (status, _) = post_engine(
        &client,
        EngineRequest::RegisterCatalog {
            catalog: Box::new(catalog),
        },
    );
    assert_eq!(status, 200);

    let inner = build_command(&server, 5, 3);
    let (status, body) = post_engine(
        &client,
        EngineRequest::Trace {
            request: Box::new(inner),
        },
    );
    assert_eq!(status, 200);
    assert!(body.contains("\"Traced\""), "not a Traced response: {body}");
    assert!(body.contains("\"stages\""));
    assert!(
        body.contains("\"dispatch.command\"") && body.contains("\"fcm.train\""),
        "stage timeline missing expected stages: {body}"
    );

    server.stop();
}

#[test]
fn healthz_reports_version_and_protocol() {
    let server = RunningServer::start(
        Arc::new(Engine::new(EngineConfig::fast())),
        ServerConfig::default(),
    )
    .expect("bind an ephemeral port");
    let client = EngineClient::new(server.addr());
    let (status, body) = client.http("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""));
    assert!(
        body.contains(&format!("\"version\":\"{}\"", env!("CARGO_PKG_VERSION"))),
        "healthz must report the crate version: {body}"
    );
    assert!(body.contains("\"protocol\":1"));
    server.stop();
}

#[test]
fn slowlog_serves_ndjson_of_slow_requests() {
    // Threshold zero: every request is "slow", so the script fills the log.
    let engine = Arc::new(Engine::new(EngineConfig {
        slow_log_threshold: Duration::ZERO,
        ..EngineConfig::fast()
    }));
    let server = RunningServer::start(Arc::clone(&engine), ServerConfig::default())
        .expect("bind an ephemeral port");
    let client = EngineClient::new(server.addr());

    // Empty log first: 200 with an empty NDJSON body.
    let (status_line, headers, body) = raw_get(server.addr(), "/slowlog");
    assert!(status_line.contains("200"));
    assert!(headers.contains("Content-Type: application/x-ndjson"));
    assert!(body.is_empty());

    let catalog =
        SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(7)).generate();
    post_engine(
        &client,
        EngineRequest::RegisterCatalog {
            catalog: Box::new(catalog),
        },
    );
    let (_, body) = post_engine(&client, build_command(&server, 1, 1));
    assert!(body.contains("\"Ok\""));

    let (_, _, body) = raw_get(server.addr(), "/slowlog");
    let entries: Vec<grouptravel_engine::SlowEntry> = body
        .lines()
        .map(|line| serde_json::from_str(line).expect("slow-log lines are JSON"))
        .collect();
    assert_eq!(engine.slow_log().total_recorded(), 1);
    assert_eq!(entries.len(), 1);
    assert_eq!(entries[0].kind, "command.build");
    assert_eq!(entries[0].session_id, 1);
    assert_eq!(entries[0].city, "Paris");
    assert!(entries[0].ok);

    server.stop();
}
