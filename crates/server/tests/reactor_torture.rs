//! Torture tests for the epoll reactor front-end: the state machines must
//! survive adversarial I/O framing — heads trickling in one byte per
//! readiness event, responses forced out a handful of bytes per write,
//! pipelined bursts, half-closed peers — and hundreds of idle keep-alive
//! connections must cost file descriptors, not threads.
//!
//! Wire-level regressions for the HTTP bug sweep also live here, because
//! they need a raw socket, not the well-behaved client: duplicate
//! conflicting `Content-Length` heads must be rejected, `Connection:
//! keep-alive, close` must close, and `/slowlog` NDJSON must round-trip
//! byte-for-byte (the old client stripped the final newline).

#![cfg(target_os = "linux")]

use grouptravel::prelude::*;
use grouptravel_engine::{CommandRequest, Engine, EngineConfig, EngineRequest, SessionCommand};
use grouptravel_server::client::EngineClient;
use grouptravel_server::{Backend, RunningServer, ServerConfig};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn reactor_server(config: ServerConfig) -> RunningServer {
    RunningServer::start(
        Arc::new(Engine::new(EngineConfig::fast())),
        ServerConfig {
            backend: Backend::Reactor,
            worker_threads: 2,
            ..config
        },
    )
    .expect("bind an ephemeral port")
}

/// Reads everything until the peer closes, as a string.
fn read_to_end(stream: &mut TcpStream) -> String {
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read until close");
    String::from_utf8(buf).expect("responses are UTF-8")
}

/// Splits one raw HTTP response into (status line, headers, body) using
/// its `Content-Length`.
fn split_response(raw: &str) -> (String, String, String) {
    let (head, rest) = raw.split_once("\r\n\r\n").expect("head/body separator");
    let (status_line, headers) = head.split_once("\r\n").unwrap_or((head, ""));
    let length: usize = headers
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .expect("responses are length-framed")
        .parse()
        .expect("numeric length");
    (
        status_line.to_string(),
        headers.to_string(),
        rest[..length].to_string(),
    )
}

#[test]
fn head_delivered_one_byte_per_event_still_parses() {
    let server = reactor_server(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    let request = b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    for &byte in request.iter() {
        stream.write_all(&[byte]).unwrap();
        stream.flush().unwrap();
        // A short pause between bytes makes each one its own readiness
        // event: the parser must resume mid-request-line and mid-header.
        std::thread::sleep(Duration::from_millis(1));
    }
    let raw = read_to_end(&mut stream);
    let (status_line, _, body) = split_response(&raw);
    assert!(status_line.contains("200"), "got: {status_line}");
    assert!(body.contains("\"ok\""));
    server.stop();
}

#[test]
fn body_split_across_events_still_parses() {
    let server = reactor_server(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream.set_nodelay(true).unwrap();

    let body = "{\"v\":1,\"request\":\"Stats\"}";
    let head = format!(
        "POST /v1/engine HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    std::thread::sleep(Duration::from_millis(5));
    // Body in two halves, a readiness event apart.
    let (a, b) = body.as_bytes().split_at(body.len() / 2);
    stream.write_all(a).unwrap();
    stream.flush().unwrap();
    std::thread::sleep(Duration::from_millis(5));
    stream.write_all(b).unwrap();

    let raw = read_to_end(&mut stream);
    let (status_line, _, body) = split_response(&raw);
    assert!(status_line.contains("200"), "got: {status_line}");
    assert!(body.contains("\"requests\":0"), "got: {body}");
    server.stop();
}

#[test]
fn responses_resume_across_partial_writes() {
    // Cap every write at 7 bytes: a /metrics scrape (multiple KiB) takes
    // hundreds of EPOLLOUT events to drain, and must arrive intact.
    let server = reactor_server(ServerConfig {
        write_chunk_limit: Some(7),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let raw = read_to_end(&mut stream);
    let (status_line, headers, body) = split_response(&raw);
    assert!(status_line.contains("200"), "got: {status_line}");
    assert!(headers.contains("Content-Length"));
    assert!(
        body.len() > 1000,
        "a real scrape is multi-KiB; got {} bytes",
        body.len()
    );
    assert!(body.contains("gt_http_connections_total"));
    assert!(
        body.trim_end().ends_with('}') || body.trim_end().chars().last().unwrap().is_ascii_digit(),
        "body must not be truncated mid-line"
    );
    server.stop();
}

#[test]
fn pipelined_burst_answers_every_request_in_order() {
    let server = reactor_server(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).unwrap();

    // Three requests in ONE write; the last asks to close. The reactor
    // dispatches them strictly in order on this connection.
    let burst = "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n\
                 GET /stats HTTP/1.1\r\nHost: t\r\n\r\n\
                 GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n";
    stream.write_all(burst.as_bytes()).unwrap();
    let raw = read_to_end(&mut stream);
    // Bodies carry no trailing newline, so the next status line starts
    // mid-"line": count occurrences, don't iterate lines().
    assert_eq!(
        raw.matches("HTTP/1.1 200").count(),
        3,
        "three 200s expected:\n{raw}"
    );
    let first_body = raw.find("\"status\":\"ok\"").expect("healthz body");
    let stats_body = raw.find("\"requests\"").expect("stats body");
    assert!(
        first_body < stats_body,
        "responses must come back in request order"
    );
    server.stop();
}

#[test]
fn conflicting_content_lengths_are_rejected_on_the_wire() {
    // Regression: duplicate differing Content-Length heads were silently
    // accepted (first won) — a request-desync hazard on kept-alive
    // connections. They must 400 and close.
    let server = reactor_server(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(
            b"POST /v1/engine HTTP/1.1\r\nHost: t\r\n\
              Content-Length: 5\r\nContent-Length: 25\r\n\r\nhello",
        )
        .unwrap();
    let raw = read_to_end(&mut stream);
    let (status_line, _, body) = split_response(&raw);
    assert!(status_line.contains("400"), "got: {status_line}");
    assert!(
        body.to_lowercase().contains("content-length"),
        "got: {body}"
    );
    server.stop();
}

#[test]
fn connection_close_in_a_token_list_closes() {
    // Regression: `Connection: keep-alive, close` kept the connection
    // open because wants_close() compared the whole value to "close".
    let server = reactor_server(ServerConfig::default());
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: keep-alive, close\r\n\r\n")
        .unwrap();
    // read_to_end only returns if the server actually closes.
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let raw = read_to_end(&mut stream);
    let (status_line, headers, _) = split_response(&raw);
    assert!(status_line.contains("200"));
    assert!(
        headers.contains("Connection: close"),
        "the server must confirm the close: {headers}"
    );
    server.stop();
}

#[test]
fn slowlog_ndjson_round_trips_byte_for_byte() {
    // Regression: the client stripped trailing newlines from
    // length-framed bodies, truncating the final `\n` of /slowlog NDJSON.
    let engine = Arc::new(Engine::new(EngineConfig {
        slow_log_threshold: Duration::ZERO,
        ..EngineConfig::fast()
    }));
    let server = RunningServer::start(Arc::clone(&engine), ServerConfig::default())
        .expect("bind an ephemeral port");
    let client = EngineClient::new(server.addr());

    let catalog =
        SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(7)).generate();
    client
        .request(EngineRequest::RegisterCatalog {
            catalog: Box::new(catalog),
        })
        .unwrap();
    let schema = engine.profile_schema("Paris").unwrap();
    let profile = SyntheticGroupGenerator::new(schema, 3)
        .group(GroupSize::Small, Uniformity::NonUniform)
        .profile(ConsensusMethod::pairwise_disagreement());
    client
        .request(EngineRequest::Command {
            request: CommandRequest::new(
                1,
                SessionCommand::build(
                    "Paris",
                    profile,
                    GroupQuery::paper_default(),
                    BuildConfig::default(),
                ),
            ),
        })
        .unwrap();

    let expected = engine.slow_log().json_lines();
    assert!(
        expected.ends_with('\n'),
        "NDJSON bodies end with a newline by construction"
    );
    let (status, body) = client.http("GET", "/slowlog", None).unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        body, expected,
        "the NDJSON body must survive the wire byte-for-byte, final newline included"
    );
    server.stop();
}

#[test]
fn idle_connections_cost_fds_not_threads() {
    // The soak in miniature: hundreds of idle keep-alive connections must
    // not grow the thread count (the old design parked one worker per
    // connection), and the server must stay responsive while holding them.
    const IDLE: usize = 512;
    let server = reactor_server(ServerConfig {
        max_connections: IDLE + 64,
        keep_alive_timeout: Duration::from_secs(60),
        ..ServerConfig::default()
    });
    let addr = server.addr();

    let threads_before = thread_count();
    let mut held: Vec<TcpStream> = Vec::with_capacity(IDLE);
    for _ in 0..IDLE {
        held.push(TcpStream::connect(addr).expect("connect an idle socket"));
    }
    // Give the reactor a beat to accept the whole backlog.
    probe_until_connections(&server, IDLE as u64);

    let threads_with_load = thread_count();
    assert!(
        threads_with_load <= threads_before + 4,
        "{IDLE} idle connections must not spawn threads: {threads_before} -> {threads_with_load}"
    );

    // Still responsive while all of them are held — both on a fresh
    // connection and on a sampled idle one.
    let client = EngineClient::new(addr);
    let (status, _) = client.http("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    let sampled = &mut held[IDLE / 2];
    sampled
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    let raw = read_to_end(sampled);
    assert!(raw.contains("200"), "a held idle connection still serves");

    drop(held);
    server.stop();
}

#[test]
fn idle_connections_are_reaped_by_the_timer_wheel() {
    let server = reactor_server(ServerConfig {
        keep_alive_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    });
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Send nothing: the wheel must close us. EOF = Ok(0) on read.
    let mut buf = [0u8; 16];
    let n = stream.read(&mut buf).expect("server closes, not stalls");
    assert_eq!(n, 0, "an idle connection past the timeout reads EOF");

    let registry = server.engine().metrics_registry();
    let timeouts = registry
        .counter("gt_http_read_timeouts_total", "", &[])
        .get();
    assert!(timeouts >= 1, "the reap must be counted; got {timeouts}");
    server.stop();
}

/// Threads of this process, from /proc/self/status.
fn thread_count() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("procfs");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line present")
}

/// Waits (bounded) until the server has accepted at least `want`
/// connections, so the idle-soak assertions don't race the accept loop.
fn probe_until_connections(server: &RunningServer, want: u64) {
    let registry = server.engine().metrics_registry();
    let counter = registry.counter("gt_http_connections_total", "", &[]);
    for _ in 0..200 {
        if counter.get() >= want {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!(
        "server accepted only {} of {want} idle connections",
        counter.get()
    );
}
