//! One-way analysis of variance (ANOVA).
//!
//! The paper validates its synthetic observations "using the One-way ANOVA
//! procedure, with the F-measure of MSB/MSE and the significance level of
//! p = 0.05", reporting results as `F(n, k) = x given p < 0.05` (§4.3.1).
//! This module computes the F statistic, the degrees of freedom, and the
//! p-value through the regularized incomplete beta function (the CDF of the
//! F distribution), all without external dependencies.

use serde::{Deserialize, Serialize};

/// Result of a one-way ANOVA.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnovaResult {
    /// The F statistic, `MSB / MSE`.
    pub f_statistic: f64,
    /// Between-groups degrees of freedom (`k − 1`).
    pub df_between: usize,
    /// Within-groups degrees of freedom (`N − k`).
    pub df_within: usize,
    /// Mean square between groups.
    pub ms_between: f64,
    /// Mean square within groups (error).
    pub ms_within: f64,
    /// The p-value, `P(F ≥ f_statistic)` under the null hypothesis.
    pub p_value: f64,
}

impl AnovaResult {
    /// Whether the group means differ significantly at level `alpha`.
    #[must_use]
    pub fn is_significant(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }

    /// Formats the result the way the paper reports it:
    /// `F(df_between, df_within) = x`.
    #[must_use]
    pub fn paper_notation(&self) -> String {
        format!(
            "F({}, {}) = {:.2}, p = {:.4}",
            self.df_between, self.df_within, self.f_statistic, self.p_value
        )
    }
}

/// Runs a one-way ANOVA over `groups` (each a sample of observations).
///
/// Returns `None` when there are fewer than two groups, any group is empty,
/// or there are not enough total observations to estimate the within-group
/// variance (`N ≤ k`).
#[must_use]
pub fn one_way_anova(groups: &[Vec<f64>]) -> Option<AnovaResult> {
    let k = groups.len();
    if k < 2 || groups.iter().any(Vec::is_empty) {
        return None;
    }
    let n_total: usize = groups.iter().map(Vec::len).sum();
    if n_total <= k {
        return None;
    }

    let grand_mean: f64 = groups.iter().flatten().sum::<f64>() / n_total as f64;

    let mut ss_between = 0.0;
    let mut ss_within = 0.0;
    for group in groups {
        let n = group.len() as f64;
        let group_mean = group.iter().sum::<f64>() / n;
        ss_between += n * (group_mean - grand_mean).powi(2);
        ss_within += group.iter().map(|v| (v - group_mean).powi(2)).sum::<f64>();
    }

    let df_between = k - 1;
    let df_within = n_total - k;
    let ms_between = ss_between / df_between as f64;
    let ms_within = ss_within / df_within as f64;

    // If all observations inside every group are identical, MSE is zero: the
    // F statistic is infinite whenever the group means differ at all.
    let f_statistic = if ms_within <= f64::EPSILON {
        if ms_between <= f64::EPSILON {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        ms_between / ms_within
    };

    let p_value = f_distribution_sf(f_statistic, df_between as f64, df_within as f64);

    Some(AnovaResult {
        f_statistic,
        df_between,
        df_within,
        ms_between,
        ms_within,
        p_value,
    })
}

/// Survival function of the F distribution: `P(F ≥ x)` with `d1`, `d2`
/// degrees of freedom.
fn f_distribution_sf(x: f64, d1: f64, d2: f64) -> f64 {
    if x <= 0.0 {
        return 1.0;
    }
    if x.is_infinite() {
        return 0.0;
    }
    // CDF(x) = I_{d1 x / (d1 x + d2)}(d1/2, d2/2); SF = 1 - CDF.
    let t = d1 * x / (d1 * x + d2);
    1.0 - regularized_incomplete_beta(d1 / 2.0, d2 / 2.0, t)
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction expansion (Lentz's algorithm), following Numerical Recipes.
fn regularized_incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b);
    let front = (ln_beta + a * x.ln() + b * (1.0 - x).ln()).exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b
    }
}

fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const TINY: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;

    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        let m2 = 2.0 * m_f;

        // Even step.
        let aa = m_f * (b - m_f) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;

        // Odd step.
        let aa = -(a + m_f) * (qab + m_f) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;

        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Natural log of the gamma function (Lanczos approximation).
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 6] = [
        76.180_091_729_471_46,
        -86.505_320_329_416_77,
        24.014_098_240_830_91,
        -1.231_739_572_450_155,
        0.120_865_097_386_617_5e-2,
        -0.539_523_938_495_3e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000_000_000_190_015;
    for c in COEFFS {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.506_628_274_631_000_5 * ser / x).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_groups_have_f_near_zero_and_p_near_one() {
        let groups = vec![
            vec![1.0, 2.0, 3.0],
            vec![1.0, 2.0, 3.0],
            vec![1.0, 2.0, 3.0],
        ];
        let result = one_way_anova(&groups).unwrap();
        assert!(result.f_statistic.abs() < 1e-12);
        assert!(result.p_value > 0.99);
        assert!(!result.is_significant(0.05));
    }

    #[test]
    fn clearly_different_groups_are_significant() {
        let groups = vec![
            vec![1.0, 1.1, 0.9, 1.05, 0.95],
            vec![5.0, 5.1, 4.9, 5.05, 4.95],
            vec![9.0, 9.1, 8.9, 9.05, 8.95],
        ];
        let result = one_way_anova(&groups).unwrap();
        assert!(result.f_statistic > 100.0);
        assert!(result.p_value < 1e-6);
        assert!(result.is_significant(0.05));
    }

    #[test]
    fn textbook_example_matches_known_f_value() {
        // Classic example: three treatments.
        let groups = vec![
            vec![6.0, 8.0, 4.0, 5.0, 3.0, 4.0],
            vec![8.0, 12.0, 9.0, 11.0, 6.0, 8.0],
            vec![13.0, 9.0, 11.0, 8.0, 7.0, 12.0],
        ];
        let result = one_way_anova(&groups).unwrap();
        assert_eq!(result.df_between, 2);
        assert_eq!(result.df_within, 15);
        assert!(
            (result.f_statistic - 9.264).abs() < 0.05,
            "F = {}",
            result.f_statistic
        );
        assert!(result.p_value < 0.05);
        assert!(result.p_value > 0.0001);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        assert!(one_way_anova(&[]).is_none());
        assert!(one_way_anova(&[vec![1.0, 2.0]]).is_none());
        assert!(one_way_anova(&[vec![1.0], vec![]]).is_none());
        assert!(one_way_anova(&[vec![1.0], vec![2.0]]).is_none());
    }

    #[test]
    fn zero_within_variance_with_different_means_is_infinite_f() {
        let groups = vec![vec![1.0, 1.0, 1.0], vec![2.0, 2.0, 2.0]];
        let result = one_way_anova(&groups).unwrap();
        assert!(result.f_statistic.is_infinite());
        assert_eq!(result.p_value, 0.0);
    }

    #[test]
    fn paper_notation_contains_dof_and_f() {
        let groups = vec![vec![1.0, 2.0, 3.0], vec![2.0, 3.0, 4.0]];
        let result = one_way_anova(&groups).unwrap();
        let s = result.paper_notation();
        assert!(s.starts_with("F(1, 4)"));
        assert!(s.contains("p ="));
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)! so ln Γ(5) = ln 24.
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        assert!((ln_gamma(1.0)).abs() < 1e-9);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn incomplete_beta_boundary_values() {
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(1, 1) is the uniform CDF.
        assert!((regularized_incomplete_beta(1.0, 1.0, 0.3) - 0.3).abs() < 1e-9);
    }

    #[test]
    fn f_survival_function_sanity() {
        // For F(1, 10), the 95th percentile is about 4.96.
        let p = f_distribution_sf(4.96, 1.0, 10.0);
        assert!((p - 0.05).abs() < 0.005, "p = {p}");
        assert_eq!(f_distribution_sf(-1.0, 1.0, 10.0), 1.0);
        assert_eq!(f_distribution_sf(f64::INFINITY, 1.0, 10.0), 0.0);
    }
}
