//! Descriptive statistics shared by the other modules.

/// Arithmetic mean. Returns `None` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    Some(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population variance (divides by `n`), as used by the paper's
/// disagreement-variance consensus. Returns `None` for an empty slice.
#[must_use]
pub fn population_variance(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    Some(values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / values.len() as f64)
}

/// Sample variance (divides by `n - 1`). Returns `None` for fewer than two
/// values.
#[must_use]
pub fn sample_variance(values: &[f64]) -> Option<f64> {
    if values.len() < 2 {
        return None;
    }
    let m = mean(values)?;
    Some(values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64)
}

/// Population standard deviation.
#[must_use]
pub fn std_dev(values: &[f64]) -> Option<f64> {
    population_variance(values).map(f64::sqrt)
}

/// Median (average of the two central values for even-sized inputs).
/// Returns `None` for an empty slice or if any value is NaN.
#[must_use]
pub fn median(values: &[f64]) -> Option<f64> {
    if values.is_empty() || values.iter().any(|v| v.is_nan()) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN filtered above"));
    let n = sorted.len();
    if n % 2 == 1 {
        Some(sorted[n / 2])
    } else {
        Some((sorted[n / 2 - 1] + sorted[n / 2]) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_none() {
        assert!(mean(&[]).is_none());
    }

    #[test]
    fn mean_of_known_values() {
        assert_eq!(mean(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
    }

    #[test]
    fn population_variance_of_constant_is_zero() {
        assert_eq!(population_variance(&[3.0, 3.0, 3.0]), Some(0.0));
    }

    #[test]
    fn population_variance_matches_hand_computation() {
        // Paper §2.3 example: preferences 0.8, 1.0, 0.6, 0.2 → variance 0.088 (μ = 0.65).
        let v = population_variance(&[0.8, 1.0, 0.6, 0.2]).unwrap();
        assert!((v - 0.0875).abs() < 1e-9);
    }

    #[test]
    fn sample_variance_requires_two_values() {
        assert!(sample_variance(&[1.0]).is_none());
        let v = sample_variance(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((v - 4.571_428_571).abs() < 1e-6);
    }

    #[test]
    fn std_dev_is_sqrt_of_variance() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let sd = std_dev(&values).unwrap();
        assert!((sd - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
        assert!(median(&[]).is_none());
        assert!(median(&[1.0, f64::NAN]).is_none());
    }
}
