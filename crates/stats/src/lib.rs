//! Statistical utilities used by the GroupTravel evaluation.
//!
//! The paper's synthetic experiment (§4.3.1) validates its observations with
//! three tools, all reimplemented here from first principles:
//!
//! * **One-way ANOVA** with the `F = MSB/MSE` statistic at significance level
//!   `p = 0.05` — [`anova`].
//! * **Pearson correlation coefficient (PCC)** to quantify linear relations
//!   between group size and the optimization dimensions — [`pearson`].
//! * **Min–max normalization** of raw dimension values into `[0, 1]` —
//!   [`normalize`].
//!
//! The user study additionally sizes its participant pool with the central
//! limit theorem formula of Eq. 5 — [`sample_size`]. Descriptive statistics
//! shared by all of the above live in [`descriptive`].

pub mod anova;
pub mod descriptive;
pub mod normalize;
pub mod pearson;
pub mod sample_size;

pub use anova::{one_way_anova, AnovaResult};
pub use descriptive::{mean, median, population_variance, sample_variance, std_dev};
pub use normalize::{min_max_normalize, MinMaxScaler};
pub use pearson::pearson_correlation;
pub use sample_size::{required_sample_size, SampleSizeParams};
