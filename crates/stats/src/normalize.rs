//! Min–max normalization.
//!
//! The synthetic experiment reports representativity, cohesiveness and
//! personalization "normalized in the range [0, 1] in min-max style" (§4.3.1):
//! `normalized(o) = (value(o) − min(o)) / (max(o) − min(o))`.

use serde::{Deserialize, Serialize};

/// A fitted min–max scaler: remembers the min and max observed when it was
/// fitted and maps new values into `[0, 1]` against that range (clamped).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MinMaxScaler {
    min: f64,
    max: f64,
}

impl MinMaxScaler {
    /// Fits a scaler on `values`. Returns `None` for an empty slice or if any
    /// value is NaN.
    #[must_use]
    pub fn fit(values: &[f64]) -> Option<Self> {
        if values.is_empty() || values.iter().any(|v| v.is_nan()) {
            return None;
        }
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Self { min, max })
    }

    /// Builds a scaler with an explicit range.
    #[must_use]
    pub fn with_range(min: f64, max: f64) -> Self {
        if min <= max {
            Self { min, max }
        } else {
            Self { min: max, max: min }
        }
    }

    /// The fitted minimum.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// The fitted maximum.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Maps `value` into `[0, 1]`, clamping values outside the fitted range.
    /// A degenerate range (max == min) maps everything to 0.5.
    #[must_use]
    pub fn transform(&self, value: f64) -> f64 {
        let span = self.max - self.min;
        if span <= f64::EPSILON {
            return 0.5;
        }
        ((value - self.min) / span).clamp(0.0, 1.0)
    }

    /// Transforms a whole slice.
    #[must_use]
    pub fn transform_all(&self, values: &[f64]) -> Vec<f64> {
        values.iter().map(|&v| self.transform(v)).collect()
    }
}

/// One-shot min–max normalization of a slice (fit + transform). Returns an
/// empty vector for empty input.
#[must_use]
pub fn min_max_normalize(values: &[f64]) -> Vec<f64> {
    match MinMaxScaler::fit(values) {
        Some(scaler) => scaler.transform_all(values),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalized_values_are_in_unit_interval_with_extremes_hit() {
        let normalized = min_max_normalize(&[10.0, 20.0, 30.0]);
        assert_eq!(normalized, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn constant_input_maps_to_half() {
        let normalized = min_max_normalize(&[7.0, 7.0, 7.0]);
        assert_eq!(normalized, vec![0.5, 0.5, 0.5]);
    }

    #[test]
    fn empty_input_gives_empty_output() {
        assert!(min_max_normalize(&[]).is_empty());
    }

    #[test]
    fn nan_input_fails_to_fit() {
        assert!(MinMaxScaler::fit(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn transform_clamps_out_of_range_values() {
        let scaler = MinMaxScaler::fit(&[0.0, 10.0]).unwrap();
        assert_eq!(scaler.transform(-5.0), 0.0);
        assert_eq!(scaler.transform(15.0), 1.0);
        assert_eq!(scaler.transform(5.0), 0.5);
    }

    #[test]
    fn with_range_swaps_inverted_bounds() {
        let scaler = MinMaxScaler::with_range(10.0, 0.0);
        assert_eq!(scaler.min(), 0.0);
        assert_eq!(scaler.max(), 10.0);
    }

    #[test]
    fn paper_dimension_ranges_normalize_correctly() {
        // §4.3.1: representativity raw values spread over [0.03, 41.39].
        let scaler = MinMaxScaler::with_range(0.03, 41.39);
        assert!((scaler.transform(0.03)).abs() < 1e-12);
        assert!((scaler.transform(41.39) - 1.0).abs() < 1e-12);
        let mid = scaler.transform((0.03 + 41.39) / 2.0);
        assert!((mid - 0.5).abs() < 1e-12);
    }
}
