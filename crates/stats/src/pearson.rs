//! Pearson correlation coefficient (PCC).
//!
//! The paper reports PCC between group size and cohesiveness (+0.98, +0.73,
//! +0.73, +0.99 across consensus methods) and between group size and
//! personalization (−0.99, −0.99, −0.89, −0.89) for uniform groups (§4.3.3).

/// Pearson correlation between two equal-length samples.
///
/// Returns `None` when the slices are empty, have different lengths, or one
/// of the variables has zero variance (correlation is undefined).
#[must_use]
pub fn pearson_correlation(x: &[f64], y: &[f64]) -> Option<f64> {
    if x.is_empty() || x.len() != y.len() {
        return None;
    }
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&a, &b) in x.iter().zip(y) {
        let dx = a - mean_x;
        let dy = b - mean_y;
        cov += dx * dy;
        var_x += dx * dx;
        var_y += dy * dy;
    }
    if var_x <= f64::EPSILON || var_y <= f64::EPSILON {
        return None;
    }
    Some(cov / (var_x.sqrt() * var_y.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_positive_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [10.0, 20.0, 30.0, 40.0];
        assert!((pearson_correlation(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_negative_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson_correlation(&x, &y).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn no_linear_correlation_for_symmetric_parabola() {
        let x = [-2.0, -1.0, 0.0, 1.0, 2.0];
        let y: Vec<f64> = x.iter().map(|v| v * v).collect();
        let r = pearson_correlation(&x, &y).unwrap();
        assert!(r.abs() < 1e-12);
    }

    #[test]
    fn mismatched_or_empty_inputs_are_none() {
        assert!(pearson_correlation(&[], &[]).is_none());
        assert!(pearson_correlation(&[1.0, 2.0], &[1.0]).is_none());
    }

    #[test]
    fn zero_variance_is_none() {
        assert!(pearson_correlation(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn correlation_is_bounded_and_symmetric() {
        let x = [1.0, 3.0, 2.0, 5.0, 4.0];
        let y = [2.0, 2.5, 1.0, 6.0, 3.0];
        let r1 = pearson_correlation(&x, &y).unwrap();
        let r2 = pearson_correlation(&y, &x).unwrap();
        assert!((-1.0..=1.0).contains(&r1));
        assert!((r1 - r2).abs() < 1e-12);
    }

    #[test]
    fn known_textbook_value() {
        let x = [43.0, 21.0, 25.0, 42.0, 57.0, 59.0];
        let y = [99.0, 65.0, 79.0, 75.0, 87.0, 81.0];
        let r = pearson_correlation(&x, &y).unwrap();
        assert!((r - 0.529809).abs() < 1e-4, "got {r}");
    }
}
