//! Survey sample-size calculation (Eq. 5).
//!
//! The user study sizes its participant pool with the central-limit-theorem
//! formula:
//!
//! ```text
//! sample size = (z² · p(1−p) / e²) / (1 + z² · p(1−p) / (e² · N))
//! ```
//!
//! with population `N = 200,000`, margin of error `e = 3%`, confidence level
//! 95% and expected proportion `p = 50%`, which "rounded up to at least 1062
//! participants" (§4.4.1).

use serde::{Deserialize, Serialize};

/// Parameters of the sample-size formula.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleSizeParams {
    /// Population size `N` (number of contributors on the crowd platforms).
    pub population: f64,
    /// Margin of error `e`, as a fraction (0.03 for 3%).
    pub margin_of_error: f64,
    /// Confidence level as a fraction (0.95 for 95%).
    pub confidence: f64,
    /// Expected proportion `p` (0.5 when unknown).
    pub proportion: f64,
}

impl Default for SampleSizeParams {
    /// The exact parameters used in the paper.
    fn default() -> Self {
        Self {
            population: 200_000.0,
            margin_of_error: 0.03,
            confidence: 0.95,
            proportion: 0.5,
        }
    }
}

impl SampleSizeParams {
    /// The z-score for the configured confidence level.
    ///
    /// Exact z-scores are tabulated for the common confidence levels; other
    /// levels fall back to an inverse-normal approximation
    /// (Beasley–Springer–Moro is unnecessary here; Acklam's rational
    /// approximation is accurate to ~1e-9 which is far more than a survey
    /// formula needs).
    #[must_use]
    pub fn z_score(&self) -> f64 {
        match (self.confidence * 1000.0).round() as u64 {
            900 => 1.6449,
            950 => 1.96,
            990 => 2.5758,
            _ => inverse_normal_cdf(0.5 + self.confidence / 2.0),
        }
    }
}

/// Computes the required sample size, rounded up to the next whole
/// participant.
#[must_use]
pub fn required_sample_size(params: &SampleSizeParams) -> u64 {
    let z = params.z_score();
    let p = params.proportion;
    let e = params.margin_of_error;
    let numerator = z * z * p * (1.0 - p) / (e * e);
    let denominator = 1.0 + numerator / params.population;
    (numerator / denominator).ceil() as u64
}

/// Acklam's rational approximation to the inverse of the standard normal CDF.
fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&p) && p > 0.0);
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_round_up_to_at_least_1062() {
        let n = required_sample_size(&SampleSizeParams::default());
        assert!(
            (1062..=1070).contains(&n),
            "expected roughly 1062–1068 participants, got {n}"
        );
    }

    #[test]
    fn infinite_population_limit_is_the_classic_formula() {
        let params = SampleSizeParams {
            population: 1e12,
            ..SampleSizeParams::default()
        };
        // z² p(1−p)/e² = 1.96² · 0.25 / 0.0009 ≈ 1067.1
        let n = required_sample_size(&params);
        assert!((1067..=1068).contains(&n), "got {n}");
    }

    #[test]
    fn tighter_margin_requires_more_participants() {
        let loose = required_sample_size(&SampleSizeParams::default());
        let tight = required_sample_size(&SampleSizeParams {
            margin_of_error: 0.01,
            ..SampleSizeParams::default()
        });
        assert!(tight > loose);
    }

    #[test]
    fn higher_confidence_requires_more_participants() {
        let c95 = required_sample_size(&SampleSizeParams::default());
        let c99 = required_sample_size(&SampleSizeParams {
            confidence: 0.99,
            ..SampleSizeParams::default()
        });
        assert!(c99 > c95);
    }

    #[test]
    fn small_populations_cap_the_sample_size() {
        let n = required_sample_size(&SampleSizeParams {
            population: 100.0,
            ..SampleSizeParams::default()
        });
        assert!(n <= 100);
    }

    #[test]
    fn z_scores_for_common_levels() {
        let p = SampleSizeParams::default();
        assert!((p.z_score() - 1.96).abs() < 1e-9);
        let p90 = SampleSizeParams {
            confidence: 0.90,
            ..p
        };
        assert!((p90.z_score() - 1.6449).abs() < 1e-9);
    }

    #[test]
    fn inverse_normal_cdf_matches_known_quantiles() {
        assert!((inverse_normal_cdf(0.975) - 1.959_964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.995) - 2.575_829).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.005) + 2.575_829).abs() < 1e-4);
    }
}
