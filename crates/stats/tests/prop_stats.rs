//! Property-based tests for the statistics crate.

use grouptravel_stats::{
    mean, median, min_max_normalize, one_way_anova, pearson_correlation, population_variance,
    required_sample_size, MinMaxScaler, SampleSizeParams,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn min_max_normalization_lands_in_unit_interval(values in prop::collection::vec(-1e6f64..1e6, 1..50)) {
        let normalized = min_max_normalize(&values);
        prop_assert_eq!(normalized.len(), values.len());
        prop_assert!(normalized.iter().all(|v| (0.0..=1.0).contains(v)));
        // The ordering of values is preserved.
        for (i, a) in values.iter().enumerate() {
            for (j, b) in values.iter().enumerate() {
                if a < b {
                    prop_assert!(normalized[i] <= normalized[j] + 1e-12);
                }
            }
        }
    }

    #[test]
    fn scaler_transform_is_monotone(lo in -1e3f64..1e3, span in 0.1f64..1e3, x in -2e3f64..2e3, y in -2e3f64..2e3) {
        let scaler = MinMaxScaler::with_range(lo, lo + span);
        if x <= y {
            prop_assert!(scaler.transform(x) <= scaler.transform(y) + 1e-12);
        }
    }

    #[test]
    fn pearson_is_bounded_and_scale_invariant(
        pairs in prop::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..40),
        scale in 0.1f64..10.0,
        shift in -50.0f64..50.0,
    ) {
        let x: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let y: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = pearson_correlation(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r));
            // Correlation is invariant under positive affine transforms.
            let x2: Vec<f64> = x.iter().map(|v| v * scale + shift).collect();
            if let Some(r2) = pearson_correlation(&x2, &y) {
                prop_assert!((r - r2).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn variance_is_non_negative_and_zero_for_constants(values in prop::collection::vec(-1e3f64..1e3, 1..40)) {
        let v = population_variance(&values).unwrap();
        prop_assert!(v >= -1e-9);
        let constant = vec![values[0]; values.len()];
        prop_assert!(population_variance(&constant).unwrap() < 1e-6);
    }

    #[test]
    fn median_lies_between_min_and_max(values in prop::collection::vec(-1e3f64..1e3, 1..40)) {
        let m = median(&values).unwrap();
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(m >= min - 1e-12 && m <= max + 1e-12);
        let avg = mean(&values).unwrap();
        prop_assert!(avg >= min - 1e-9 && avg <= max + 1e-9);
    }

    #[test]
    fn anova_p_value_is_a_probability(
        g1 in prop::collection::vec(-10.0f64..10.0, 3..15),
        g2 in prop::collection::vec(-10.0f64..10.0, 3..15),
        g3 in prop::collection::vec(-10.0f64..10.0, 3..15),
    ) {
        if let Some(result) = one_way_anova(&[g1, g2, g3]) {
            prop_assert!((0.0..=1.0).contains(&result.p_value));
            prop_assert!(result.f_statistic >= 0.0);
            prop_assert_eq!(result.df_between, 2);
        }
    }

    #[test]
    fn sample_size_is_monotone_in_margin_and_bounded_by_population(
        population in 100.0f64..1e6,
        e1 in 0.01f64..0.1,
        e2 in 0.01f64..0.1,
    ) {
        let params = |e: f64| SampleSizeParams {
            population,
            margin_of_error: e,
            ..SampleSizeParams::default()
        };
        let n1 = required_sample_size(&params(e1));
        let n2 = required_sample_size(&params(e2));
        if e1 <= e2 {
            prop_assert!(n1 >= n2, "tighter margin should need at least as many participants");
        }
        prop_assert!(n1 as f64 <= population + 1.0);
        prop_assert!(n1 >= 1);
    }
}
