//! Simulated crowdsourced user-study substrate.
//!
//! The paper's user study (§4.4) recruits 3000 participants from Figure-Eight
//! and Amazon Mechanical Turk, prunes invalid submissions, collects travel
//! profiles, forms groups, and asks participants to rate travel packages on a
//! 1–5 scale (independent evaluation) and to pick the better of two packages
//! (comparative evaluation). An injected *random* package with invalid
//! composite items serves as an attention check: participants who prefer it
//! are discarded.
//!
//! Real crowd workers cannot be recruited offline, so this crate simulates
//! them (see DESIGN.md for the substitution argument):
//!
//! * [`worker`] — simulated workers with a ground-truth travel profile, a
//!   platform of origin, a contact-validity flag (for the pruning step) and a
//!   carelessness probability (for the attention check).
//! * [`platform`] — the recruitment pipeline: platform populations, pruning
//!   rates, payments, and group formation from recruited workers.
//! * [`rating`] — the rating model: a worker's 1–5 score for a package is a
//!   noisy monotone function of the cosine affinity between the worker's
//!   profile and the package's item vectors; pairwise choices pick the
//!   higher-affinity package (careless workers answer at random).

pub mod platform;
pub mod rating;
pub mod worker;

pub use platform::{CrowdPlatform, RecruitmentConfig, StudyPopulation};
pub use rating::{RatingModel, RatingModelConfig};
pub use worker::{Platform, SimulatedWorker};
