//! Recruitment pipeline and group formation.
//!
//! §4.4.1: 3000 participants are recruited (2000 Figure-Eight, 1000
//! Mechanical Turk), pruned of invalid contacts (keeping 90.1% / 96.6%),
//! paid $0.01 for the profile form and $0.50 for package evaluation, and then
//! formed into groups of varying size and uniformity.

use crate::worker::{Platform, SimulatedWorker};
use grouptravel_profile::{
    Group, GroupSize, ProfileSchema, SyntheticGroupGenerator, Uniformity, UserProfile,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Payment for filling in the travel-profile form.
pub const PROFILE_PAYMENT: f64 = 0.01;
/// Payment for evaluating travel packages.
pub const EVALUATION_PAYMENT: f64 = 0.50;

/// How many workers to recruit from each platform and the shape of the
/// simulated population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecruitmentConfig {
    /// Recruits from Figure-Eight (2000 in the paper).
    pub figure_eight: usize,
    /// Recruits from Mechanical Turk (1000 in the paper).
    pub mechanical_turk: usize,
    /// Mean carelessness probability of the population.
    pub mean_carelessness: f64,
    /// Randomness seed.
    pub seed: u64,
}

impl Default for RecruitmentConfig {
    fn default() -> Self {
        Self {
            figure_eight: 2000,
            mechanical_turk: 1000,
            mean_carelessness: 0.08,
            seed: 42,
        }
    }
}

impl RecruitmentConfig {
    /// A scaled-down configuration for tests and quick experiments.
    #[must_use]
    pub fn small(seed: u64) -> Self {
        Self {
            figure_eight: 80,
            mechanical_turk: 40,
            seed,
            ..Self::default()
        }
    }

    /// Total recruits before pruning.
    #[must_use]
    pub fn total(&self) -> usize {
        self.figure_eight + self.mechanical_turk
    }
}

/// A recruited, pruned population of simulated workers.
#[derive(Debug, Clone)]
pub struct StudyPopulation {
    workers: Vec<SimulatedWorker>,
    pruned: usize,
}

impl StudyPopulation {
    /// The retained workers (valid contacts only).
    #[must_use]
    pub fn workers(&self) -> &[SimulatedWorker] {
        &self.workers
    }

    /// Mutable access (payments).
    #[must_use]
    pub fn workers_mut(&mut self) -> &mut [SimulatedWorker] {
        &mut self.workers
    }

    /// Number of retained workers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether nobody survived pruning.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// How many recruits were pruned for invalid contact details.
    #[must_use]
    pub fn pruned(&self) -> usize {
        self.pruned
    }
}

/// The simulated crowd platform.
#[derive(Debug, Clone)]
pub struct CrowdPlatform {
    schema: ProfileSchema,
    config: RecruitmentConfig,
}

impl CrowdPlatform {
    /// Creates a platform whose workers' profiles follow `schema`.
    #[must_use]
    pub fn new(schema: ProfileSchema, config: RecruitmentConfig) -> Self {
        Self { schema, config }
    }

    /// Recruits, prunes, and pays the profile fee to the retained workers.
    #[must_use]
    pub fn recruit(&self) -> StudyPopulation {
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut profile_gen = SyntheticGroupGenerator::new(self.schema, self.config.seed ^ 0x9e37);
        let mut workers = Vec::with_capacity(self.config.total());
        let mut pruned = 0usize;
        let mut worker_id = 1u64;

        let recruit_from = |platform: Platform,
                            count: usize,
                            rng: &mut SmallRng,
                            profile_gen: &mut SyntheticGroupGenerator,
                            workers: &mut Vec<SimulatedWorker>,
                            pruned: &mut usize,
                            worker_id: &mut u64| {
            for _ in 0..count {
                let mut profile: UserProfile = profile_gen.random_user();
                profile.user_id = *worker_id;
                let valid_contact = rng.gen_bool(platform.retention_rate());
                let carelessness =
                    (self.config.mean_carelessness + rng.gen_range(-0.05..=0.05)).clamp(0.0, 0.9);
                let approval_rate = rng.gen_range(0.80..=1.0);
                let mut worker = SimulatedWorker::new(
                    *worker_id,
                    platform,
                    profile,
                    valid_contact,
                    carelessness,
                    approval_rate,
                );
                *worker_id += 1;
                if worker.valid_contact {
                    worker.pay(PROFILE_PAYMENT);
                    workers.push(worker);
                } else {
                    *pruned += 1;
                }
            }
        };

        recruit_from(
            Platform::FigureEight,
            self.config.figure_eight,
            &mut rng,
            &mut profile_gen,
            &mut workers,
            &mut pruned,
            &mut worker_id,
        );
        recruit_from(
            Platform::MechanicalTurk,
            self.config.mechanical_turk,
            &mut rng,
            &mut profile_gen,
            &mut workers,
            &mut pruned,
            &mut worker_id,
        );

        StudyPopulation { workers, pruned }
    }

    /// Forms a [`Group`] of the requested size and uniformity from the
    /// population, preferring workers whose real profiles actually satisfy
    /// the uniformity class.
    ///
    /// The paper builds uniform groups from similar participants; with a
    /// simulated population the cleanest equivalent is to seed the group with
    /// one worker and greedily add the most (or least) similar remaining
    /// workers until the requested size is reached. Returns `None` when the
    /// population is smaller than the requested size.
    #[must_use]
    pub fn form_group(
        &self,
        population: &StudyPopulation,
        size: GroupSize,
        uniformity: Uniformity,
        group_id: u64,
    ) -> Option<Group> {
        self.form_group_sized(population, size.member_count(), uniformity, group_id)
    }

    /// Like [`CrowdPlatform::form_group`] but with an explicit member count —
    /// the customization study uses one uniform group of 11 members and one
    /// non-uniform group of 7 members (§4.4.4), which do not match the
    /// synthetic size classes.
    #[must_use]
    pub fn form_group_sized(
        &self,
        population: &StudyPopulation,
        n: usize,
        uniformity: Uniformity,
        group_id: u64,
    ) -> Option<Group> {
        if population.len() < n || n == 0 {
            return None;
        }
        let seed_idx = (group_id as usize) % population.len();
        let seed_profile = &population.workers()[seed_idx].profile;
        let mut scored: Vec<(usize, f64)> = population
            .workers()
            .iter()
            .enumerate()
            .map(|(idx, w)| (idx, seed_profile.similarity(&w.profile)))
            .collect();
        match uniformity {
            Uniformity::Uniform => {
                scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
            }
            Uniformity::NonUniform => {
                scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            }
        }
        let members: Vec<UserProfile> = scored
            .into_iter()
            .take(n)
            .map(|(idx, _)| population.workers()[idx].profile.clone())
            .collect();
        Some(Group::new(group_id, members))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform(seed: u64) -> (CrowdPlatform, StudyPopulation) {
        let p = CrowdPlatform::new(ProfileSchema::default(), RecruitmentConfig::small(seed));
        let pop = p.recruit();
        (p, pop)
    }

    #[test]
    fn recruitment_prunes_roughly_the_paper_rates() {
        let config = RecruitmentConfig {
            figure_eight: 2000,
            mechanical_turk: 1000,
            ..RecruitmentConfig::default()
        };
        let p = CrowdPlatform::new(ProfileSchema::default(), config);
        let pop = p.recruit();
        let retained = pop.len() as f64 / config.total() as f64;
        // Expected overall retention: (2000·0.901 + 1000·0.966) / 3000 ≈ 0.923.
        assert!(
            (0.89..=0.95).contains(&retained),
            "retention {retained} outside the expected band"
        );
        assert_eq!(pop.len() + pop.pruned(), config.total());
    }

    #[test]
    fn retained_workers_have_valid_contacts_and_were_paid() {
        let (_, pop) = platform(3);
        assert!(!pop.is_empty());
        for w in pop.workers() {
            assert!(w.valid_contact);
            assert!((w.earned - PROFILE_PAYMENT).abs() < 1e-12);
        }
    }

    #[test]
    fn recruitment_is_deterministic_per_seed() {
        let (_, a) = platform(5);
        let (_, b) = platform(5);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.workers()[0].profile, b.workers()[0].profile);
        let (_, c) = platform(6);
        assert_ne!(a.workers()[0].profile, c.workers()[0].profile);
    }

    #[test]
    fn worker_ids_are_unique() {
        let (_, pop) = platform(7);
        let mut ids: Vec<u64> = pop.workers().iter().map(|w| w.worker_id).collect();
        let len = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), len);
    }

    #[test]
    fn group_formation_produces_the_requested_size_and_ordering() {
        let (p, pop) = platform(9);
        let uniform = p
            .form_group(&pop, GroupSize::Small, Uniformity::Uniform, 1)
            .unwrap();
        let non_uniform = p
            .form_group(&pop, GroupSize::Small, Uniformity::NonUniform, 1)
            .unwrap();
        assert_eq!(uniform.size(), 5);
        assert_eq!(non_uniform.size(), 5);
        assert!(
            uniform.uniformity() >= non_uniform.uniformity(),
            "uniform group ({}) should not be less uniform than the non-uniform one ({})",
            uniform.uniformity(),
            non_uniform.uniformity()
        );
    }

    #[test]
    fn group_formation_fails_when_the_population_is_too_small() {
        let p = CrowdPlatform::new(
            ProfileSchema::default(),
            RecruitmentConfig {
                figure_eight: 3,
                mechanical_turk: 0,
                ..RecruitmentConfig::default()
            },
        );
        let pop = p.recruit();
        assert!(p
            .form_group(&pop, GroupSize::Large, Uniformity::Uniform, 1)
            .is_none());
    }
}
