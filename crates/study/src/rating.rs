//! The rating model: how a simulated worker evaluates travel packages.
//!
//! §4.4.3: participants indicate their interest in visiting the POIs of a
//! package with the rest of their group on a 1–5 scale, and, in the
//! comparative evaluation, pick the preferred package of a pair. An attentive
//! worker's answers are driven by how well the package matches their own
//! travel preferences; a careless worker answers at random, which the
//! injected invalid "random" package is designed to catch.
//!
//! The simulated rating is a noisy affine function of the worker's mean
//! cosine affinity to the package's item vectors, clamped to `[1, 5]`. The
//! affinity is exactly the per-item personalization term of Eq. 1 computed
//! against the *individual* worker profile instead of the group profile, so
//! packages personalized towards a profile similar to the worker's receive
//! higher ratings — which is all the paper's comparisons rely on.

use crate::worker::SimulatedWorker;
use grouptravel::{ItemVectorizer, TravelPackage};
use grouptravel_dataset::PoiCatalog;
use grouptravel_profile::cosine_similarity;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters of the rating model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatingModelConfig {
    /// Base rating given to a package with zero affinity.
    pub base: f64,
    /// How strongly affinity moves the rating (rating = base + gain·affinity
    /// + noise before clamping).
    pub gain: f64,
    /// Standard deviation of the rating noise.
    pub noise_std: f64,
    /// Flat penalty applied by attentive workers to packages containing
    /// invalid composite items (the attention-check package).
    pub invalid_penalty: f64,
    /// Randomness seed.
    pub seed: u64,
}

impl Default for RatingModelConfig {
    fn default() -> Self {
        Self {
            base: 1.8,
            gain: 3.2,
            noise_std: 0.35,
            invalid_penalty: 0.6,
            seed: 42,
        }
    }
}

/// The rating model. Holds its own RNG so a sequence of ratings is
/// deterministic given the seed.
#[derive(Debug, Clone)]
pub struct RatingModel {
    config: RatingModelConfig,
    rng: SmallRng,
}

impl RatingModel {
    /// Creates a rating model.
    #[must_use]
    pub fn new(config: RatingModelConfig) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &RatingModelConfig {
        &self.config
    }

    /// Mean cosine affinity between `worker`'s profile and the item vectors
    /// of every POI in `package` (0 for an empty package).
    #[must_use]
    pub fn affinity(
        worker: &SimulatedWorker,
        package: &TravelPackage,
        catalog: &PoiCatalog,
        vectorizer: &ItemVectorizer,
    ) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for ci in package.composite_items() {
            for poi in ci.resolve(catalog) {
                let item = vectorizer.item_vector(poi);
                total += cosine_similarity(worker.profile.vector(poi.category), &item);
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total / count as f64
        }
    }

    /// Whether the package contains at least one composite item that is
    /// invalid for `query` — the signature of the attention-check package.
    #[must_use]
    pub fn looks_invalid(
        package: &TravelPackage,
        catalog: &PoiCatalog,
        query: &grouptravel::GroupQuery,
    ) -> bool {
        package.is_empty()
            || package
                .composite_items()
                .iter()
                .any(|ci| !ci.is_valid(catalog, query))
    }

    /// The worker's 1–5 rating of a package (independent evaluation).
    pub fn rate(
        &mut self,
        worker: &SimulatedWorker,
        package: &TravelPackage,
        catalog: &PoiCatalog,
        vectorizer: &ItemVectorizer,
        query: &grouptravel::GroupQuery,
    ) -> f64 {
        if self.rng.gen_bool(worker.carelessness) {
            // Careless answer: uniform over the scale.
            return self.rng.gen_range(1.0..=5.0);
        }
        let affinity = Self::affinity(worker, package, catalog, vectorizer);
        let mut rating = self.config.base + self.config.gain * affinity;
        if Self::looks_invalid(package, catalog, query) {
            rating -= self.config.invalid_penalty;
        }
        rating += self.gaussian() * self.config.noise_std;
        rating.clamp(1.0, 5.0)
    }

    /// The comparative evaluation: returns `true` when the worker prefers
    /// `first` over `second`.
    pub fn prefers_first(
        &mut self,
        worker: &SimulatedWorker,
        first: &TravelPackage,
        second: &TravelPackage,
        catalog: &PoiCatalog,
        vectorizer: &ItemVectorizer,
        query: &grouptravel::GroupQuery,
    ) -> bool {
        if self.rng.gen_bool(worker.carelessness) {
            return self.rng.gen_bool(0.5);
        }
        let penalty = self.config.invalid_penalty / self.config.gain;
        let noise_scale = self.config.noise_std / self.config.gain;
        let n1 = self.gaussian() * noise_scale;
        let n2 = self.gaussian() * noise_scale;
        let score = |package: &TravelPackage, rng_noise: f64| {
            let mut s = Self::affinity(worker, package, catalog, vectorizer);
            if Self::looks_invalid(package, catalog, query) {
                s -= penalty;
            }
            s + rng_noise
        };
        score(first, n1) >= score(second, n2)
    }

    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::Platform;
    use grouptravel::prelude::*;
    use grouptravel_topics::LdaConfig;

    struct Fixture {
        session: GroupTravelSession,
        query: GroupQuery,
        personalized: TravelPackage,
        random: TravelPackage,
        worker: SimulatedWorker,
    }

    fn fixture() -> Fixture {
        let catalog =
            SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(81))
                .generate();
        let session = GroupTravelSession::new(
            catalog,
            SessionConfig {
                lda: LdaConfig {
                    iterations: 40,
                    ..LdaConfig::default()
                },
                ..SessionConfig::default()
            },
        )
        .unwrap();
        let query = GroupQuery::paper_default();

        // A worker and a group profile aligned with that worker, so the
        // personalized package should fit the worker well.
        let mut gen = SyntheticGroupGenerator::new(session.profile_schema(), 4);
        let profile_user = gen.random_user();
        let group = Group::new(1, vec![profile_user.clone()]);
        let profile = group.profile(ConsensusMethod::average_preference());
        let personalized = session
            .build_package(&profile, &query, &BuildConfig::default())
            .unwrap();
        let random = session.build_random(&query, 5, 7).unwrap();
        let worker = SimulatedWorker::new(
            profile_user.user_id,
            Platform::FigureEight,
            profile_user,
            true,
            0.0,
            0.95,
        );
        Fixture {
            session,
            query,
            personalized,
            random,
            worker,
        }
    }

    #[test]
    fn ratings_stay_on_the_1_to_5_scale() {
        let f = fixture();
        let mut model = RatingModel::new(RatingModelConfig::default());
        for _ in 0..20 {
            let r = model.rate(
                &f.worker,
                &f.personalized,
                f.session.catalog(),
                f.session.vectorizer(),
                &f.query,
            );
            assert!((1.0..=5.0).contains(&r), "rating {r} out of range");
        }
    }

    #[test]
    fn attentive_workers_prefer_the_personalized_package_on_average() {
        let f = fixture();
        let mut model = RatingModel::new(RatingModelConfig::default());
        let trials = 50;
        let mut wins = 0;
        for _ in 0..trials {
            if model.prefers_first(
                &f.worker,
                &f.personalized,
                &f.random,
                f.session.catalog(),
                f.session.vectorizer(),
                &f.query,
            ) {
                wins += 1;
            }
        }
        assert!(
            wins * 2 > trials,
            "personalized package won only {wins}/{trials} comparisons"
        );
    }

    #[test]
    fn affinity_is_zero_for_an_empty_package() {
        let f = fixture();
        let empty = TravelPackage::default();
        assert_eq!(
            RatingModel::affinity(
                &f.worker,
                &empty,
                f.session.catalog(),
                f.session.vectorizer()
            ),
            0.0
        );
    }

    #[test]
    fn invalid_packages_are_detected() {
        let f = fixture();
        assert!(RatingModel::looks_invalid(
            &f.random,
            f.session.catalog(),
            &f.query
        ));
        assert!(!RatingModel::looks_invalid(
            &f.personalized,
            f.session.catalog(),
            &f.query
        ));
        assert!(RatingModel::looks_invalid(
            &TravelPackage::default(),
            f.session.catalog(),
            &f.query
        ));
    }

    #[test]
    fn careless_workers_answer_at_random() {
        let f = fixture();
        let careless = SimulatedWorker::new(
            99,
            Platform::MechanicalTurk,
            f.worker.profile.clone(),
            true,
            1.0,
            0.95,
        );
        let mut model = RatingModel::new(RatingModelConfig {
            noise_std: 0.0,
            ..RatingModelConfig::default()
        });
        // With carelessness = 1.0 every rating is uniform noise, so over many
        // trials the spread must be wide.
        let ratings: Vec<f64> = (0..50)
            .map(|_| {
                model.rate(
                    &careless,
                    &f.personalized,
                    f.session.catalog(),
                    f.session.vectorizer(),
                    &f.query,
                )
            })
            .collect();
        let min = ratings.iter().copied().fold(f64::INFINITY, f64::min);
        let max = ratings.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min > 2.0,
            "careless ratings did not spread: {min}..{max}"
        );
    }

    #[test]
    fn ratings_are_deterministic_per_seed() {
        let f = fixture();
        let run = |seed: u64| {
            let mut model = RatingModel::new(RatingModelConfig {
                seed,
                ..RatingModelConfig::default()
            });
            (0..5)
                .map(|_| {
                    model.rate(
                        &f.worker,
                        &f.personalized,
                        f.session.catalog(),
                        f.session.vectorizer(),
                        &f.query,
                    )
                })
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12));
    }
}
