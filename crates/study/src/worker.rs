//! Simulated crowd workers.

use grouptravel_profile::UserProfile;
use serde::{Deserialize, Serialize};

/// Which crowd platform a worker was recruited from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Figure-Eight (2000 recruits in the paper).
    FigureEight,
    /// Amazon Mechanical Turk (1000 recruits in the paper).
    MechanicalTurk,
}

impl Platform {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Platform::FigureEight => "Figure-Eight",
            Platform::MechanicalTurk => "Amazon Mechanical Turk",
        }
    }

    /// The fraction of recruits retained after pruning profiles with invalid
    /// e-mail addresses or identifiers (90.1% and 96.6% in §4.4.1).
    #[must_use]
    pub fn retention_rate(&self) -> f64 {
        match self {
            Platform::FigureEight => 0.901,
            Platform::MechanicalTurk => 0.966,
        }
    }
}

/// A simulated study participant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulatedWorker {
    /// Worker identifier; doubles as the user id of the profile.
    pub worker_id: u64,
    /// Where the worker was recruited.
    pub platform: Platform,
    /// The worker's ground-truth travel preferences (what the profile
    /// elicitation form would have captured).
    pub profile: UserProfile,
    /// Whether the worker supplied a valid e-mail address / identifier; false
    /// means the worker is pruned before the study.
    pub valid_contact: bool,
    /// Probability that the worker answers a task carelessly (at random
    /// rather than according to their preferences). Careless answers are what
    /// the injected random package is designed to catch.
    pub carelessness: f64,
    /// Task-approval rate of the worker (the customization study recruits
    /// only workers above 90%, §4.4.4).
    pub approval_rate: f64,
    /// Accumulated payment in dollars.
    pub earned: f64,
}

impl SimulatedWorker {
    /// Creates a worker.
    #[must_use]
    pub fn new(
        worker_id: u64,
        platform: Platform,
        profile: UserProfile,
        valid_contact: bool,
        carelessness: f64,
        approval_rate: f64,
    ) -> Self {
        Self {
            worker_id,
            platform,
            profile,
            valid_contact,
            carelessness: carelessness.clamp(0.0, 1.0),
            approval_rate: approval_rate.clamp(0.0, 1.0),
            earned: 0.0,
        }
    }

    /// Pays the worker `amount` dollars.
    pub fn pay(&mut self, amount: f64) {
        self.earned += amount.max(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouptravel_profile::ProfileSchema;

    #[test]
    fn retention_rates_match_the_paper() {
        assert!((Platform::FigureEight.retention_rate() - 0.901).abs() < 1e-12);
        assert!((Platform::MechanicalTurk.retention_rate() - 0.966).abs() < 1e-12);
        assert_eq!(Platform::FigureEight.name(), "Figure-Eight");
    }

    #[test]
    fn carelessness_and_approval_are_clamped() {
        let profile = UserProfile::empty(1, ProfileSchema::default());
        let w = SimulatedWorker::new(1, Platform::MechanicalTurk, profile, true, 7.0, -1.0);
        assert_eq!(w.carelessness, 1.0);
        assert_eq!(w.approval_rate, 0.0);
    }

    #[test]
    fn payments_accumulate_and_ignore_negative_amounts() {
        let profile = UserProfile::empty(2, ProfileSchema::default());
        let mut w = SimulatedWorker::new(2, Platform::FigureEight, profile, true, 0.1, 0.95);
        w.pay(0.01);
        w.pay(0.50);
        w.pay(-3.0);
        assert!((w.earned - 0.51).abs() < 1e-12);
    }
}
