//! Collapsed Gibbs sampling for Latent Dirichlet Allocation.
//!
//! Standard LDA with symmetric Dirichlet priors `alpha` (document–topic) and
//! `beta` (topic–word). Training runs the collapsed Gibbs sampler for a fixed
//! number of sweeps; the final counts give the document–topic distributions
//! θ and topic–word distributions φ. Held-out documents can be folded in with
//! a short Gibbs run that keeps φ fixed.

use crate::vocab::Vocabulary;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyperparameters of the sampler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LdaConfig {
    /// Number of latent topics `K`.
    pub num_topics: usize,
    /// Symmetric document–topic prior.
    pub alpha: f64,
    /// Symmetric topic–word prior.
    pub beta: f64,
    /// Number of Gibbs sweeps over the corpus.
    pub iterations: usize,
    /// Randomness seed (the sampler is deterministic given the seed).
    pub seed: u64,
}

impl Default for LdaConfig {
    fn default() -> Self {
        Self {
            num_topics: 4,
            alpha: 0.5,
            beta: 0.1,
            iterations: 200,
            seed: 42,
        }
    }
}

impl LdaConfig {
    /// A 64-bit key over every field that influences training (FNV-1a over
    /// the exact bits). Two configurations with equal keys train identical
    /// models on the same corpus; the serving engine combines this with a
    /// catalog fingerprint to key its vectorizer cache.
    #[must_use]
    pub fn cache_key(&self) -> u64 {
        let mut hash = grouptravel_geo::Fnv1a::new();
        hash.write_u64(self.num_topics as u64);
        hash.write_f64(self.alpha);
        hash.write_f64(self.beta);
        hash.write_u64(self.iterations as u64);
        hash.write_u64(self.seed);
        hash.finish()
    }
}

/// A trained LDA model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LdaModel {
    config: LdaConfig,
    vocab_size: usize,
    /// Per-document topic distributions θ, one row per training document.
    doc_topic: Vec<Vec<f64>>,
    /// Per-topic word distributions φ, `num_topics × vocab_size`.
    topic_word: Vec<Vec<f64>>,
}

impl LdaModel {
    /// Trains a model on `documents`, each a list of word ids drawn from
    /// `vocabulary`.
    ///
    /// Empty documents are allowed; their topic distribution is the uniform
    /// distribution. Returns `None` when the configuration is unusable
    /// (zero topics) or the vocabulary is empty while some document is not.
    #[must_use]
    pub fn train(
        documents: &[Vec<usize>],
        vocabulary: &Vocabulary,
        config: LdaConfig,
    ) -> Option<Self> {
        let k = config.num_topics;
        let v = vocabulary.len();
        if k == 0 {
            return None;
        }
        if v == 0 && documents.iter().any(|d| !d.is_empty()) {
            return None;
        }
        if documents.iter().flatten().any(|&w| w >= v) {
            return None;
        }

        let mut rng = SmallRng::seed_from_u64(config.seed);
        let d = documents.len();

        // Count matrices of the collapsed sampler.
        let mut n_dk = vec![vec![0usize; k]; d]; // document × topic
        let mut n_kw = vec![vec![0usize; v.max(1)]; k]; // topic × word
        let mut n_k = vec![0usize; k]; // topic totals
        let mut assignments: Vec<Vec<usize>> = Vec::with_capacity(d);

        // Random initialization.
        for (doc_idx, doc) in documents.iter().enumerate() {
            let mut doc_assign = Vec::with_capacity(doc.len());
            for &word in doc {
                let topic = rng.gen_range(0..k);
                n_dk[doc_idx][topic] += 1;
                n_kw[topic][word] += 1;
                n_k[topic] += 1;
                doc_assign.push(topic);
            }
            assignments.push(doc_assign);
        }

        let alpha = config.alpha;
        let beta = config.beta;
        let v_beta = beta * v as f64;
        let mut weights = vec![0.0f64; k];

        for _ in 0..config.iterations {
            for (doc_idx, doc) in documents.iter().enumerate() {
                for (pos, &word) in doc.iter().enumerate() {
                    let old_topic = assignments[doc_idx][pos];
                    n_dk[doc_idx][old_topic] -= 1;
                    n_kw[old_topic][word] -= 1;
                    n_k[old_topic] -= 1;

                    // Full conditional P(z = t | rest).
                    let mut total = 0.0;
                    for (t, weight) in weights.iter_mut().enumerate() {
                        let w = (n_dk[doc_idx][t] as f64 + alpha) * (n_kw[t][word] as f64 + beta)
                            / (n_k[t] as f64 + v_beta);
                        *weight = w;
                        total += w;
                    }

                    let new_topic = sample_discrete(&weights, total, &mut rng);
                    assignments[doc_idx][pos] = new_topic;
                    n_dk[doc_idx][new_topic] += 1;
                    n_kw[new_topic][word] += 1;
                    n_k[new_topic] += 1;
                }
            }
        }

        // Point estimates of θ and φ from the final counts.
        let doc_topic = n_dk
            .iter()
            .zip(documents)
            .map(|(counts, doc)| {
                let total = doc.len() as f64 + alpha * k as f64;
                counts.iter().map(|&c| (c as f64 + alpha) / total).collect()
            })
            .collect();

        let topic_word = n_kw
            .iter()
            .zip(&n_k)
            .map(|(counts, &total)| {
                let denom = total as f64 + v_beta;
                counts.iter().map(|&c| (c as f64 + beta) / denom).collect()
            })
            .collect();

        Some(Self {
            config,
            vocab_size: v,
            doc_topic,
            topic_word,
        })
    }

    /// The configuration the model was trained with.
    #[must_use]
    pub fn config(&self) -> &LdaConfig {
        &self.config
    }

    /// Number of topics.
    #[must_use]
    pub fn num_topics(&self) -> usize {
        self.config.num_topics
    }

    /// Topic distribution θ of the `idx`-th training document.
    #[must_use]
    pub fn document_topics(&self, idx: usize) -> Option<&[f64]> {
        self.doc_topic.get(idx).map(Vec::as_slice)
    }

    /// All per-document topic distributions in training order.
    #[must_use]
    pub fn all_document_topics(&self) -> &[Vec<f64>] {
        &self.doc_topic
    }

    /// Word distribution φ of topic `topic`.
    #[must_use]
    pub fn topic_words(&self, topic: usize) -> Option<&[f64]> {
        self.topic_word.get(topic).map(Vec::as_slice)
    }

    /// The `n` most probable word ids of a topic, most probable first.
    #[must_use]
    pub fn top_words(&self, topic: usize, n: usize) -> Vec<usize> {
        let Some(dist) = self.topic_words(topic) else {
            return Vec::new();
        };
        let mut indexed: Vec<(usize, f64)> = dist.iter().copied().enumerate().collect();
        indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        indexed.into_iter().take(n).map(|(i, _)| i).collect()
    }

    /// Folds in a held-out document: a short Gibbs run with φ held fixed.
    /// Unknown/out-of-range word ids are skipped; an empty document gets the
    /// uniform distribution.
    #[must_use]
    pub fn infer(&self, document: &[usize], sweeps: usize, seed: u64) -> Vec<f64> {
        let k = self.config.num_topics;
        let words: Vec<usize> = document
            .iter()
            .copied()
            .filter(|&w| w < self.vocab_size)
            .collect();
        if words.is_empty() {
            return vec![1.0 / k as f64; k];
        }

        let mut rng = SmallRng::seed_from_u64(seed);
        let mut n_dk = vec![0usize; k];
        let mut assignments = Vec::with_capacity(words.len());
        for _ in &words {
            let t = rng.gen_range(0..k);
            n_dk[t] += 1;
            assignments.push(t);
        }

        let alpha = self.config.alpha;
        let mut weights = vec![0.0f64; k];
        for _ in 0..sweeps.max(1) {
            for (pos, &word) in words.iter().enumerate() {
                let old = assignments[pos];
                n_dk[old] -= 1;
                let mut total = 0.0;
                for (t, weight) in weights.iter_mut().enumerate() {
                    let w = (n_dk[t] as f64 + alpha) * self.topic_word[t][word];
                    *weight = w;
                    total += w;
                }
                let new = sample_discrete(&weights, total, &mut rng);
                assignments[pos] = new;
                n_dk[new] += 1;
            }
        }

        let total = words.len() as f64 + alpha * k as f64;
        n_dk.iter().map(|&c| (c as f64 + alpha) / total).collect()
    }
}

/// Samples an index proportionally to `weights` (which sum to `total`).
fn sample_discrete(weights: &[f64], total: f64, rng: &mut SmallRng) -> usize {
    if total <= 0.0 || !total.is_finite() {
        return rng.gen_range(0..weights.len());
    }
    let mut pick = rng.gen_range(0.0..total);
    for (idx, &w) in weights.iter().enumerate() {
        if pick < w {
            return idx;
        }
        pick -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny corpus with two obvious themes: museum-words and park-words.
    fn themed_corpus() -> (Vec<Vec<usize>>, Vocabulary) {
        let museum_words = ["museum", "gallery", "art", "exhibition"];
        let park_words = ["park", "garden", "picnic", "lake"];
        let mut docs_str: Vec<Vec<&str>> = Vec::new();
        for i in 0..30 {
            let source: &[&str] = if i % 2 == 0 {
                &museum_words
            } else {
                &park_words
            };
            let doc: Vec<&str> = (0..6).map(|j| source[(i + j) % source.len()]).collect();
            docs_str.push(doc);
        }
        let vocab = Vocabulary::from_documents(docs_str.clone());
        let docs = docs_str.iter().map(|d| vocab.encode(d)).collect();
        (docs, vocab)
    }

    fn two_topic_config(seed: u64) -> LdaConfig {
        LdaConfig {
            num_topics: 2,
            alpha: 0.1,
            beta: 0.05,
            iterations: 150,
            seed,
        }
    }

    #[test]
    fn document_topic_distributions_sum_to_one() {
        let (docs, vocab) = themed_corpus();
        let model = LdaModel::train(&docs, &vocab, two_topic_config(1)).unwrap();
        for theta in model.all_document_topics() {
            let sum: f64 = theta.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(theta.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn topic_word_distributions_sum_to_one() {
        let (docs, vocab) = themed_corpus();
        let model = LdaModel::train(&docs, &vocab, two_topic_config(2)).unwrap();
        for t in 0..model.num_topics() {
            let sum: f64 = model.topic_words(t).unwrap().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn recovers_the_two_themes() {
        let (docs, vocab) = themed_corpus();
        let model = LdaModel::train(&docs, &vocab, two_topic_config(3)).unwrap();
        // Museum documents (even indices) should concentrate on one topic and
        // park documents (odd indices) on the other.
        let museum_major: usize = {
            let theta = model.document_topics(0).unwrap();
            if theta[0] > theta[1] {
                0
            } else {
                1
            }
        };
        let park_major = 1 - museum_major;
        let mut correct = 0;
        for (idx, theta) in model.all_document_topics().iter().enumerate() {
            let major = if theta[0] > theta[1] { 0 } else { 1 };
            let expected = if idx % 2 == 0 {
                museum_major
            } else {
                park_major
            };
            if major == expected {
                correct += 1;
            }
        }
        assert!(
            correct >= 27,
            "only {correct}/30 documents matched their theme"
        );
    }

    #[test]
    fn top_words_of_a_topic_are_from_one_theme() {
        let (docs, vocab) = themed_corpus();
        let model = LdaModel::train(&docs, &vocab, two_topic_config(4)).unwrap();
        let museum_ids: Vec<usize> = ["museum", "gallery", "art", "exhibition"]
            .iter()
            .filter_map(|w| vocab.id_of(w))
            .collect();
        // For each topic, its top-4 words should be (almost) all museum words
        // or (almost) all park words.
        for t in 0..2 {
            let top = model.top_words(t, 4);
            let museum_count = top.iter().filter(|w| museum_ids.contains(w)).count();
            assert!(
                museum_count >= 3 || museum_count <= 1,
                "topic {t} mixes themes: {museum_count}/4 museum words"
            );
        }
    }

    #[test]
    fn training_is_deterministic_given_a_seed() {
        let (docs, vocab) = themed_corpus();
        let a = LdaModel::train(&docs, &vocab, two_topic_config(9)).unwrap();
        let b = LdaModel::train(&docs, &vocab, two_topic_config(9)).unwrap();
        assert_eq!(a.all_document_topics(), b.all_document_topics());
    }

    #[test]
    fn infer_assigns_new_documents_to_the_right_theme() {
        let (docs, vocab) = themed_corpus();
        let model = LdaModel::train(&docs, &vocab, two_topic_config(5)).unwrap();
        let museum_doc = vocab.encode(&["museum", "art", "gallery"]);
        let park_doc = vocab.encode(&["park", "garden", "lake"]);
        let theta_m = model.infer(&museum_doc, 50, 7);
        let theta_p = model.infer(&park_doc, 50, 7);
        let major_m = if theta_m[0] > theta_m[1] { 0 } else { 1 };
        let major_p = if theta_p[0] > theta_p[1] { 0 } else { 1 };
        assert_ne!(major_m, major_p);
    }

    #[test]
    fn infer_on_empty_or_unknown_document_is_uniform() {
        let (docs, vocab) = themed_corpus();
        let model = LdaModel::train(&docs, &vocab, two_topic_config(6)).unwrap();
        let theta = model.infer(&[], 10, 1);
        assert_eq!(theta, vec![0.5, 0.5]);
        let theta = model.infer(&[9999], 10, 1);
        assert_eq!(theta, vec![0.5, 0.5]);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let (docs, vocab) = themed_corpus();
        let bad = LdaConfig {
            num_topics: 0,
            ..two_topic_config(1)
        };
        assert!(LdaModel::train(&docs, &vocab, bad).is_none());
        // Word id outside the vocabulary.
        let bad_docs = vec![vec![vocab.len() + 5]];
        assert!(LdaModel::train(&bad_docs, &vocab, two_topic_config(1)).is_none());
    }

    #[test]
    fn empty_documents_get_uniform_topics() {
        let (mut docs, vocab) = themed_corpus();
        docs.push(Vec::new());
        let model = LdaModel::train(&docs, &vocab, two_topic_config(8)).unwrap();
        let theta = model.document_topics(docs.len() - 1).unwrap();
        assert!((theta[0] - 0.5).abs() < 1e-9);
        assert!((theta[1] - 0.5).abs() < 1e-9);
    }
}
