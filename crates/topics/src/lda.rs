//! Collapsed Gibbs sampling for Latent Dirichlet Allocation.
//!
//! Standard LDA with symmetric Dirichlet priors `alpha` (document–topic) and
//! `beta` (topic–word). Training runs the collapsed Gibbs sampler for a fixed
//! number of sweeps; the final counts give the document–topic distributions
//! θ and topic–word distributions φ. Held-out documents can be folded in with
//! a short Gibbs run that keeps φ fixed.
//!
//! # The flat training hot path
//!
//! The sampler walks flat, cache-friendly buffers instead of the seed's
//! nested `Vec<Vec<…>>` matrices (preserved in [`crate::reference`] for
//! differential tests and the before/after bench):
//!
//! * **Word-major topic–word counts.** The seed stored `n_kw[topic][word]`,
//!   so the inner loop over topics walked one *column* — `k` pointer chases
//!   into `k` separate heap rows per token. The flat layout transposes to
//!   `n_wk[word × k + topic]`: the `k` counts a token needs are one
//!   contiguous row, and the next token's row is touched one step early so
//!   the only truly random access of the sweep is already in flight.
//! * **Flat per-document counts and assignments.** Document–topic rows live
//!   in one dense buffer; token assignments are a single flat array with
//!   per-document offsets; counts are stored as exact-integer `f64`s so the
//!   conditional reads its factors straight off the buffer. The weight
//!   buffer is hoisted out of the sweep (zero allocations per sweep).
//! * **Incremental reciprocal denominators.** A token step changes only two
//!   topics' totals, so `1/(n_k + Vβ)` is cached per topic and the `k`
//!   divisions the seed paid per token become two, plus a multiply per
//!   topic.
//! * **Sparse short-document shortcut.** A document with far fewer tokens
//!   than topics can only ever touch a handful of topics, so it keeps a
//!   sorted `(topic, count)` list instead of a dense row (`0 + α == α`
//!   exactly, so splatting the prior for absent topics is exact).
//!
//! Counts, the RNG draw sequence, and θ/φ derivation are exactly the
//! seed's; two rounding differences remain, each ≤ 1 ulp per sampling
//! boundary: the cached reciprocal (`x · (1/y)` instead of `x / y`) and
//! the cumulative sampling scan (the draw is compared against rounded
//! prefix sums instead of being serially decremented per topic). Either
//! could in principle flip a draw that lands within an ulp of a topic
//! boundary — never observed in practice, and the differential suite
//! (`tests/diff_lda.rs`) pins bit-identical θ/φ and assignments against
//! the seed implementation for a range of corpora, topic counts, and
//! seeds.
//!
//! # Versioned samplers: `Collapsed` vs `BlockGibbsV1`
//!
//! [`LdaConfig::sampler`] selects between two explicitly versioned
//! samplers. [`LdaSampler::Collapsed`] (the default) is the sequential
//! collapsed Gibbs sampler above — the differential reference, pinned
//! bit-identically against the seed implementation. It never parallelizes:
//! every token draw conditions on the one before it.
//!
//! [`LdaSampler::BlockGibbsV1`] is a block-parallel, partially-collapsed
//! variant in the AD-LDA family, built for [`LdaModel::train_on`] with a
//! worker pool:
//!
//! * Documents are partitioned into [`BLOCK_GIBBS_BLOCKS`] **fixed
//!   contiguous blocks** — a function of the corpus size only, never of
//!   the thread count.
//! * Within one sweep, the global topic–word counts `n_wk` and topic
//!   totals `n_k` are **frozen at their sweep-start values**; each block
//!   samples its documents against `frozen + own-delta`, accumulating its
//!   increments/decrements in private delta buffers. Document–topic counts
//!   are exact throughout (each document belongs to exactly one block).
//! * Every `(sweep, block)` pair derives its own RNG stream from
//!   `config.seed` via a splitmix64 mix, so the draw sequence is a pure
//!   function of the configuration and the block grid.
//! * At sweep end the deltas are merged back — counts are exact small
//!   integers in `f64`, whose sums are associative bitwise, so the merge
//!   order cannot perturb results; the merge itself fans out over fixed
//!   ranges of the count buffer.
//!
//! The result is **thread-count independent and run-to-run bit-identical**:
//! `train_on` with any pool width (including none) produces the same model
//! (`tests/diff_lda.rs` pins block\@N ≡ block\@1 by `to_bits`). What the
//! contract deliberately does *not* promise is equality with `Collapsed`:
//! deferring cross-block count visibility to sweep boundaries changes each
//! draw's conditional slightly (the classic AD-LDA approximation), so the
//! two samplers are different — versioned — model families, and a
//! [`LdaConfig::cache_key`] covers the sampler tag.

use crate::vocab::Vocabulary;
use grouptravel_geo::DenseMatrix;
use grouptravel_pool::{TaskKind, WorkerPool};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Which Gibbs sampler trains the model. Explicitly versioned: a sampler's
/// draw sequence is part of its identity, so any behavioral change ships as
/// a new variant rather than silently retraining different models under the
/// same cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LdaSampler {
    /// The sequential collapsed Gibbs sampler — the differential reference,
    /// bit-identical to the seed implementation. Ignores any worker pool.
    #[default]
    Collapsed,
    /// Block-parallel partially-collapsed Gibbs (AD-LDA style): fixed
    /// document blocks, sweep-frozen global counts with per-block deltas,
    /// derived per-`(sweep, block)` RNG streams. Bit-identical at any
    /// thread count, *not* draw-for-draw equal to `Collapsed` (see the
    /// module docs).
    BlockGibbsV1,
}

impl LdaSampler {
    /// Stable tag fed into [`LdaConfig::cache_key`].
    fn cache_tag(self) -> u8 {
        match self {
            LdaSampler::Collapsed => 0,
            LdaSampler::BlockGibbsV1 => 1,
        }
    }
}

/// Hyperparameters of the sampler.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LdaConfig {
    /// Number of latent topics `K`.
    pub num_topics: usize,
    /// Symmetric document–topic prior.
    pub alpha: f64,
    /// Symmetric topic–word prior.
    pub beta: f64,
    /// Number of Gibbs sweeps over the corpus.
    pub iterations: usize,
    /// Randomness seed (the sampler is deterministic given the seed).
    pub seed: u64,
    /// Which sampler runs the sweeps (collapsed sequential by default).
    pub sampler: LdaSampler,
}

impl Default for LdaConfig {
    fn default() -> Self {
        Self {
            num_topics: 4,
            alpha: 0.5,
            beta: 0.1,
            iterations: 200,
            seed: 42,
            sampler: LdaSampler::Collapsed,
        }
    }
}

impl LdaConfig {
    /// A 64-bit key over every field that influences training (FNV-1a over
    /// the exact bits). Two configurations with equal keys train identical
    /// models on the same corpus; the serving engine combines this with a
    /// catalog fingerprint to key its vectorizer cache. The sampler tag is
    /// part of the key: the collapsed and block samplers produce different
    /// models from identical hyperparameters.
    #[must_use]
    pub fn cache_key(&self) -> u64 {
        let mut hash = grouptravel_geo::Fnv1a::new();
        hash.write_u64(self.num_topics as u64);
        hash.write_f64(self.alpha);
        hash.write_f64(self.beta);
        hash.write_u64(self.iterations as u64);
        hash.write_u64(self.seed);
        hash.write(&[self.sampler.cache_tag()]);
        hash.finish()
    }
}

/// Per-document topic counts: dense rows for most documents, a sorted
/// sparse `(topic, count)` list for documents so short (fewer than a
/// quarter of the topic count) that a dense row would be mostly zeros.
enum DocCounts {
    /// Byte-free handle: offset of this document's row in the shared flat
    /// dense buffer.
    Dense(usize),
    /// Sorted by topic; at most `doc.len()` entries.
    Sparse(Vec<(u32, u32)>),
}

impl DocCounts {
    fn increment(&mut self, n_dk: &mut [f64], topic: usize) {
        match self {
            DocCounts::Dense(off) => n_dk[*off + topic] += 1.0,
            DocCounts::Sparse(list) => sparse_increment(list, topic),
        }
    }
}

/// Adds one to `topic` in a sorted sparse `(topic, count)` list.
fn sparse_increment(list: &mut Vec<(u32, u32)>, topic: usize) {
    match list.binary_search_by_key(&(topic as u32), |&(t, _)| t) {
        Ok(i) => list[i].1 += 1,
        Err(i) => list.insert(i, (topic as u32, 1)),
    }
}

/// Removes one from `topic` in a sorted sparse `(topic, count)` list,
/// dropping the entry when it reaches zero.
fn sparse_decrement(list: &mut Vec<(u32, u32)>, topic: usize) {
    let i = list
        .binary_search_by_key(&(topic as u32), |&(t, _)| t)
        .expect("decremented a topic the document does not hold");
    list[i].1 -= 1;
    if list[i].1 == 0 {
        list.remove(i);
    }
}

/// A trained LDA model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LdaModel {
    config: LdaConfig,
    vocab_size: usize,
    /// Per-document topic distributions θ: a flat `documents × num_topics`
    /// matrix, one row per training document.
    doc_topic: DenseMatrix,
    /// Per-topic word distributions φ: `num_topics × vocab_size`.
    topic_word: DenseMatrix,
}

impl LdaModel {
    /// Trains a model on `documents`, each a list of word ids drawn from
    /// `vocabulary`, with the sampler named by `config.sampler` — on the
    /// calling thread only.
    ///
    /// Empty documents are allowed; their topic distribution is the uniform
    /// distribution. Returns `None` when the configuration is unusable
    /// (zero topics) or the vocabulary is empty while some document is not.
    #[must_use]
    pub fn train(
        documents: &[Vec<usize>],
        vocabulary: &Vocabulary,
        config: LdaConfig,
    ) -> Option<Self> {
        Self::train_on(documents, vocabulary, config, None)
    }

    /// [`LdaModel::train`] with an optional worker pool. Only the
    /// [`LdaSampler::BlockGibbsV1`] sampler fans out — and produces the
    /// same bits with or without a pool; the collapsed reference sampler is
    /// sequential by definition and ignores `pool`.
    #[must_use]
    pub fn train_on(
        documents: &[Vec<usize>],
        vocabulary: &Vocabulary,
        config: LdaConfig,
        pool: Option<&WorkerPool>,
    ) -> Option<Self> {
        let (k, v) = Self::validate(documents, vocabulary, &config)?;
        match config.sampler {
            LdaSampler::Collapsed => Self::train_collapsed(documents, config, k, v),
            LdaSampler::BlockGibbsV1 => Self::train_block(documents, config, k, v, pool),
        }
    }

    fn validate(
        documents: &[Vec<usize>],
        vocabulary: &Vocabulary,
        config: &LdaConfig,
    ) -> Option<(usize, usize)> {
        let k = config.num_topics;
        let v = vocabulary.len();
        if k == 0 {
            return None;
        }
        if v == 0 && documents.iter().any(|d| !d.is_empty()) {
            return None;
        }
        if documents.iter().flatten().any(|&w| w >= v) {
            return None;
        }
        Some((k, v))
    }

    fn train_collapsed(
        documents: &[Vec<usize>],
        config: LdaConfig,
        k: usize,
        v: usize,
    ) -> Option<Self> {
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let Counts {
            mut doc_counts,
            mut n_dk,
            mut n_wk,
            mut n_k,
            mut assignments,
        } = Counts::init(documents, k, v, &mut rng);

        let alpha = config.alpha;
        let beta = config.beta;
        let v_beta = beta * v as f64;
        let mut weights = vec![0.0f64; k];
        let mut sparse_dk = vec![0.0f64; k];

        // Reciprocal denominators `1 / (nk + Vβ)`: a token step changes
        // only two topics' totals, so the k divisions the seed paid per
        // token become two divisions per token plus a multiply per topic.
        // This is the one place the flat sampler rounds differently from
        // the seed (`x * (1/y)` vs `x / y`, ≤ 1 ulp); see the differential
        // suite for the resulting equivalence contract.
        let mut rnkv: Vec<f64> = n_k.iter().map(|&c| 1.0 / (c + v_beta)).collect();

        for _ in 0..config.iterations {
            let mut cursor = 0usize;
            // The dense/sparse dispatch is hoisted to one match per
            // document: the token loop itself is branch-free on the
            // representation.
            for (doc, counts) in documents.iter().zip(&mut doc_counts) {
                match counts {
                    DocCounts::Dense(off) => {
                        let off = *off;
                        for (pos, &word) in doc.iter().enumerate() {
                            // Touch the next token's topic-word row early so
                            // its cache line is in flight while this token
                            // samples (the row is the one truly random
                            // access of the sweep).
                            if let Some(&next) = doc.get(pos + 1) {
                                std::hint::black_box(n_wk[next * k]);
                            }
                            let old_topic = assignments[cursor] as usize;
                            n_dk[off + old_topic] -= 1.0;
                            n_wk[word * k + old_topic] -= 1.0;
                            n_k[old_topic] -= 1.0;
                            rnkv[old_topic] = 1.0 / (n_k[old_topic] + v_beta);

                            // Full conditional P(z = t | rest): the k
                            // topic–word counts of this word are one
                            // contiguous row, as is the document's row.
                            let wk_row = &n_wk[word * k..word * k + k];
                            let dk_row = &n_dk[off..off + k];
                            let mut total = 0.0;
                            for (((weight, &dk), &wk), &rnk_v) in
                                weights.iter_mut().zip(dk_row).zip(wk_row).zip(&rnkv)
                            {
                                total += (dk + alpha) * (wk + beta) * rnk_v;
                                *weight = total;
                            }

                            let new_topic = sample_cumulative(&weights, total, &mut rng);
                            assignments[cursor] = new_topic as u32;
                            n_dk[off + new_topic] += 1.0;
                            n_wk[word * k + new_topic] += 1.0;
                            n_k[new_topic] += 1.0;
                            rnkv[new_topic] = 1.0 / (n_k[new_topic] + v_beta);
                            cursor += 1;
                        }
                    }
                    DocCounts::Sparse(list) => {
                        for &word in doc {
                            let old_topic = assignments[cursor] as usize;
                            sparse_decrement(list, old_topic);
                            n_wk[word * k + old_topic] -= 1.0;
                            n_k[old_topic] -= 1.0;
                            rnkv[old_topic] = 1.0 / (n_k[old_topic] + v_beta);

                            // Short-document shortcut: splat zero (absent
                            // topics hold `0 + α == α` exactly) and
                            // overwrite only the few topics the document
                            // holds, then run the same weight fill.
                            sparse_dk.fill(0.0);
                            for &(t, c) in list.iter() {
                                sparse_dk[t as usize] = f64::from(c);
                            }
                            let wk_row = &n_wk[word * k..word * k + k];
                            let mut total = 0.0;
                            for (((weight, &dk), &wk), &rnk_v) in
                                weights.iter_mut().zip(&sparse_dk).zip(wk_row).zip(&rnkv)
                            {
                                total += (dk + alpha) * (wk + beta) * rnk_v;
                                *weight = total;
                            }

                            let new_topic = sample_cumulative(&weights, total, &mut rng);
                            assignments[cursor] = new_topic as u32;
                            sparse_increment(list, new_topic);
                            n_wk[word * k + new_topic] += 1.0;
                            n_k[new_topic] += 1.0;
                            rnkv[new_topic] = 1.0 / (n_k[new_topic] + v_beta);
                            cursor += 1;
                        }
                    }
                }
            }
        }

        let counts = Counts {
            doc_counts,
            n_dk,
            n_wk,
            n_k,
            assignments,
        };
        Some(Self::derive(documents, &counts, config, k, v))
    }

    /// The block-parallel partially-collapsed sampler (`BlockGibbsV1`); see
    /// the module docs for the update rule and determinism contract.
    fn train_block(
        documents: &[Vec<usize>],
        config: LdaConfig,
        k: usize,
        v: usize,
        pool: Option<&WorkerPool>,
    ) -> Option<Self> {
        // Identical random initialization to the collapsed sampler (one
        // RNG stream over all documents, in document order).
        let mut init_rng = SmallRng::seed_from_u64(config.seed);
        let mut counts = Counts::init(documents, k, v, &mut init_rng);

        // A one-worker pool runs the blocks inline in block order — the
        // same schedule, the same bits.
        let pool = pool.filter(|p| p.threads() > 1);

        // The block grid: contiguous document ranges, a function of the
        // corpus size and BLOCK_GIBBS_BLOCKS only. Dense per-document rows
        // are allocated in document order, so each block also owns a
        // contiguous range of `n_dk` and of the flat assignments.
        let d = documents.len();
        let docs_per_block = d.div_ceil(BLOCK_GIBBS_BLOCKS).max(1);
        let block_count = d.div_ceil(docs_per_block).max(1);
        let mut token_sizes = Vec::with_capacity(block_count);
        let mut dense_sizes = Vec::with_capacity(block_count);
        let mut dense_bases = Vec::with_capacity(block_count);
        let mut dense_base = 0usize;
        for (block, docs) in documents.chunks(docs_per_block).enumerate() {
            let dense: usize = docs.iter().filter(|doc| doc.len() * 4 >= k).count();
            token_sizes.push(docs.iter().map(Vec::len).sum::<usize>());
            dense_sizes.push(dense * k);
            dense_bases.push(dense_base);
            dense_base += dense * k;
            debug_assert!(block < block_count);
        }

        let mut spaces: Vec<BlockSpace> = (0..block_count).map(|_| BlockSpace::new(k, v)).collect();
        let v_beta = config.beta * v as f64;

        for sweep in 0..config.iterations {
            // Phase 1 — sample every block against the frozen globals.
            {
                let frozen_wk: &[f64] = &counts.n_wk;
                let frozen_k: &[f64] = &counts.n_k;
                let doc_chunks = counts.doc_counts.chunks_mut(docs_per_block);
                let assign_chunks = split_by_sizes(&mut counts.assignments, &token_sizes);
                let dk_chunks = split_by_sizes(&mut counts.n_dk, &dense_sizes);
                let blocks = documents
                    .chunks(docs_per_block)
                    .zip(doc_chunks)
                    .zip(assign_chunks.into_iter().zip(dk_chunks))
                    .zip(spaces.iter_mut())
                    .enumerate();
                match pool {
                    Some(pool) => pool.scope(TaskKind::LdaTrain, |scope| {
                        for (b, (((docs, doc_counts), (assignments, n_dk)), space)) in blocks {
                            let seed = block_seed(config.seed, sweep as u64, b as u64);
                            let dense_base = dense_bases[b];
                            scope.spawn(move || {
                                block_sweep(
                                    BlockSlice {
                                        documents: docs,
                                        doc_counts,
                                        assignments,
                                        n_dk,
                                        dense_base,
                                        frozen_wk,
                                        frozen_k,
                                    },
                                    space,
                                    &config,
                                    v_beta,
                                    seed,
                                );
                            });
                        }
                    }),
                    None => {
                        for (b, (((docs, doc_counts), (assignments, n_dk)), space)) in blocks {
                            let seed = block_seed(config.seed, sweep as u64, b as u64);
                            block_sweep(
                                BlockSlice {
                                    documents: docs,
                                    doc_counts,
                                    assignments,
                                    n_dk,
                                    dense_base: dense_bases[b],
                                    frozen_wk,
                                    frozen_k,
                                },
                                space,
                                &config,
                                v_beta,
                                seed,
                            );
                        }
                    }
                }
            }

            // Phase 2 — merge the per-block deltas into the globals. The
            // counts are exact integers in f64 (sums < 2^53), so these adds
            // are associative bitwise and the merge order is immaterial to
            // the result; blocks are still walked in index order.
            for space in &mut spaces {
                for (total, delta) in counts.n_k.iter_mut().zip(&mut space.delta_k) {
                    *total += *delta;
                    *delta = 0.0;
                }
            }
            // The big word–topic buffer merges over fixed flat ranges —
            // parallel when a pool is present, inline otherwise.
            let chunk_len = counts.n_wk.len().div_ceil(BLOCK_GIBBS_BLOCKS).max(1);
            let global_chunks = counts.n_wk.chunks_mut(chunk_len);
            let mut delta_chunks: Vec<Vec<&mut [f64]>> =
                (0..global_chunks.len()).map(|_| Vec::new()).collect();
            for space in &mut spaces {
                for (r, chunk) in space.delta_wk.chunks_mut(chunk_len).enumerate() {
                    delta_chunks[r].push(chunk);
                }
            }
            let merges = global_chunks.zip(delta_chunks);
            match pool {
                Some(pool) => pool.scope(TaskKind::LdaTrain, |scope| {
                    for (global, deltas) in merges {
                        scope.spawn(move || merge_deltas(global, deltas));
                    }
                }),
                None => {
                    for (global, deltas) in merges {
                        merge_deltas(global, deltas);
                    }
                }
            }
        }

        Some(Self::derive(documents, &counts, config, k, v))
    }

    /// Point estimates of θ and φ from the final counts (exact integer
    /// f64s, so `c + α` rounds exactly like the seed's `c as f64 + α`).
    fn derive(
        documents: &[Vec<usize>],
        counts: &Counts,
        config: LdaConfig,
        k: usize,
        v: usize,
    ) -> Self {
        let alpha = config.alpha;
        let beta = config.beta;
        let v_beta = beta * v as f64;
        let mut doc_topic = DenseMatrix::zeros(documents.len(), k);
        for (idx, (doc, doc_counts)) in documents.iter().zip(&counts.doc_counts).enumerate() {
            let total = doc.len() as f64 + alpha * k as f64;
            let row = doc_topic.row_mut(idx);
            match doc_counts {
                DocCounts::Dense(off) => {
                    for (slot, &c) in row.iter_mut().zip(&counts.n_dk[*off..*off + k]) {
                        *slot = (c + alpha) / total;
                    }
                }
                DocCounts::Sparse(list) => {
                    for slot in row.iter_mut() {
                        *slot = alpha / total;
                    }
                    for &(t, c) in list {
                        row[t as usize] = (f64::from(c) + alpha) / total;
                    }
                }
            }
        }

        let mut topic_word = DenseMatrix::zeros(k, v.max(1));
        for (t, &nk) in counts.n_k.iter().enumerate() {
            let denom = nk + v_beta;
            for (w, slot) in topic_word.row_mut(t).iter_mut().enumerate() {
                *slot = (counts.n_wk[w * k + t] + beta) / denom;
            }
        }

        Self {
            config,
            vocab_size: v,
            doc_topic,
            topic_word,
        }
    }

    /// The configuration the model was trained with.
    #[must_use]
    pub fn config(&self) -> &LdaConfig {
        &self.config
    }

    /// Number of topics.
    #[must_use]
    pub fn num_topics(&self) -> usize {
        self.config.num_topics
    }

    /// Topic distribution θ of the `idx`-th training document.
    #[must_use]
    pub fn document_topics(&self, idx: usize) -> Option<&[f64]> {
        self.doc_topic.get_row(idx)
    }

    /// All per-document topic distributions in training order, as a flat
    /// `documents × num_topics` matrix (iterate rows with
    /// [`DenseMatrix::rows`] or a `for` loop over `&matrix`).
    #[must_use]
    pub fn all_document_topics(&self) -> &DenseMatrix {
        &self.doc_topic
    }

    /// Word distribution φ of topic `topic`.
    #[must_use]
    pub fn topic_words(&self, topic: usize) -> Option<&[f64]> {
        self.topic_word.get_row(topic)
    }

    /// The `n` most probable word ids of a topic, most probable first.
    #[must_use]
    pub fn top_words(&self, topic: usize, n: usize) -> Vec<usize> {
        let Some(dist) = self.topic_words(topic) else {
            return Vec::new();
        };
        let mut indexed: Vec<(usize, f64)> = dist.iter().copied().enumerate().collect();
        indexed.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        indexed.into_iter().take(n).map(|(i, _)| i).collect()
    }

    /// Folds in a held-out document: a short Gibbs run with φ held fixed.
    /// Unknown/out-of-range word ids are skipped; an empty document gets the
    /// uniform distribution.
    #[must_use]
    pub fn infer(&self, document: &[usize], sweeps: usize, seed: u64) -> Vec<f64> {
        let k = self.config.num_topics;
        let words: Vec<usize> = document
            .iter()
            .copied()
            .filter(|&w| w < self.vocab_size)
            .collect();
        if words.is_empty() {
            return vec![1.0 / k as f64; k];
        }

        let mut rng = SmallRng::seed_from_u64(seed);
        let mut n_dk = vec![0usize; k];
        let mut assignments = Vec::with_capacity(words.len());
        for _ in &words {
            let t = rng.gen_range(0..k);
            n_dk[t] += 1;
            assignments.push(t);
        }

        let alpha = self.config.alpha;
        let mut weights = vec![0.0f64; k];
        for _ in 0..sweeps.max(1) {
            for (pos, &word) in words.iter().enumerate() {
                let old = assignments[pos];
                n_dk[old] -= 1;
                let mut total = 0.0;
                for (t, weight) in weights.iter_mut().enumerate() {
                    let w = (n_dk[t] as f64 + alpha) * self.topic_word[t][word];
                    *weight = w;
                    total += w;
                }
                let new = sample_discrete(&weights, total, &mut rng);
                assignments[pos] = new;
                n_dk[new] += 1;
            }
        }

        let total = words.len() as f64 + alpha * k as f64;
        n_dk.iter().map(|&c| (c as f64 + alpha) / total).collect()
    }
}

/// Number of document blocks of the `BlockGibbsV1` sampler. Part of the
/// versioned sampler contract: the block grid brackets which token draws
/// see which counts, so changing this constant changes the trained model —
/// that would be a `BlockGibbsV2`, not a tweak.
pub const BLOCK_GIBBS_BLOCKS: usize = 16;

/// The shared flat count state of both samplers.
struct Counts {
    doc_counts: Vec<DocCounts>,
    n_dk: Vec<f64>,
    n_wk: Vec<f64>,
    n_k: Vec<f64>,
    assignments: Vec<u32>,
}

impl Counts {
    /// Builds the flat count matrices and randomly initializes every token
    /// assignment — one RNG stream, document order (the same draw order as
    /// the seed implementation).
    ///
    /// Counts are stored as `f64`: they are small integers, which f64 holds
    /// exactly (and increments/decrements by 1.0 keep exact), so the
    /// conditional's factors come straight off the buffer with no
    /// integer→float conversion in the inner loop. The topic–word counts
    /// are word-major: `n_wk[word * k + topic]`. Per-document counts are
    /// dense rows in one shared buffer, allocated in document order, except
    /// for documents much shorter than the topic count (len < k/4), which
    /// take a sorted sparse list instead.
    fn init(documents: &[Vec<usize>], k: usize, v: usize, rng: &mut SmallRng) -> Self {
        let mut n_wk = vec![0.0f64; v.max(1) * k];
        let mut n_k = vec![0.0f64; k];

        let mut dense_rows = 0usize;
        let mut doc_counts: Vec<DocCounts> = documents
            .iter()
            .map(|doc| {
                if doc.len() * 4 >= k {
                    let off = dense_rows * k;
                    dense_rows += 1;
                    DocCounts::Dense(off)
                } else {
                    DocCounts::Sparse(Vec::with_capacity(doc.len()))
                }
            })
            .collect();
        let mut n_dk = vec![0.0f64; dense_rows * k];

        // Flat token assignments, documents back to back.
        let total_tokens: usize = documents.iter().map(Vec::len).sum();
        let mut assignments = vec![0u32; total_tokens];

        let mut cursor = 0usize;
        for (doc, counts) in documents.iter().zip(&mut doc_counts) {
            for &word in doc {
                let topic = rng.gen_range(0..k);
                counts.increment(&mut n_dk, topic);
                n_wk[word * k + topic] += 1.0;
                n_k[topic] += 1.0;
                assignments[cursor] = topic as u32;
                cursor += 1;
            }
        }

        Self {
            doc_counts,
            n_dk,
            n_wk,
            n_k,
            assignments,
        }
    }
}

/// Per-block workspace of the block sampler, allocated once per fit and
/// reused every sweep. The delta buffers are zero between sweeps (the merge
/// zeroes them as it drains them).
struct BlockSpace {
    /// This block's pending topic–word count changes, `v × k` word-major.
    delta_wk: Vec<f64>,
    /// This block's pending topic total changes.
    delta_k: Vec<f64>,
    /// Cached `1 / (frozen_k + delta_k + Vβ)` per topic.
    rnkv: Vec<f64>,
    /// Cumulative conditional weights of the current token.
    weights: Vec<f64>,
    /// Dense splat of a sparse document's counts.
    sparse_dk: Vec<f64>,
}

impl BlockSpace {
    fn new(k: usize, v: usize) -> Self {
        Self {
            delta_wk: vec![0.0; v.max(1) * k],
            delta_k: vec![0.0; k],
            rnkv: vec![0.0; k],
            weights: vec![0.0; k],
            sparse_dk: vec![0.0; k],
        }
    }
}

/// One block's disjoint view of the training state: its documents, its
/// per-document counts, its slice of the flat assignments and dense rows,
/// and the sweep-frozen global counts every block reads.
struct BlockSlice<'a> {
    documents: &'a [Vec<usize>],
    doc_counts: &'a mut [DocCounts],
    assignments: &'a mut [u32],
    n_dk: &'a mut [f64],
    /// Global flat offset of `n_dk[0]` — `DocCounts::Dense` offsets are
    /// global, this block's slice starts here.
    dense_base: usize,
    frozen_wk: &'a [f64],
    frozen_k: &'a [f64],
}

/// One sweep of one block: samples every token of the block's documents
/// against `frozen + delta` counts, recording count changes in the block's
/// delta buffers. The RNG stream is derived per `(sweep, block)` — thread
/// scheduling cannot reach the draws.
fn block_sweep(
    block: BlockSlice<'_>,
    space: &mut BlockSpace,
    config: &LdaConfig,
    v_beta: f64,
    seed: u64,
) {
    let k = config.num_topics;
    let alpha = config.alpha;
    let beta = config.beta;
    let mut rng = SmallRng::seed_from_u64(seed);
    let BlockSlice {
        documents,
        doc_counts,
        assignments,
        n_dk,
        dense_base,
        frozen_wk,
        frozen_k,
    } = block;

    // Deltas are zero at sweep start, so this is 1/(frozen + Vβ).
    for ((r, &f), &dl) in space.rnkv.iter_mut().zip(frozen_k).zip(&space.delta_k) {
        *r = 1.0 / (f + dl + v_beta);
    }

    let mut cursor = 0usize;
    for (doc, counts) in documents.iter().zip(doc_counts.iter_mut()) {
        match counts {
            DocCounts::Dense(off) => {
                let off = *off - dense_base;
                for &word in doc {
                    let old = assignments[cursor] as usize;
                    n_dk[off + old] -= 1.0;
                    space.delta_wk[word * k + old] -= 1.0;
                    space.delta_k[old] -= 1.0;
                    space.rnkv[old] = 1.0 / (frozen_k[old] + space.delta_k[old] + v_beta);

                    let wk_frozen = &frozen_wk[word * k..word * k + k];
                    let wk_delta = &space.delta_wk[word * k..word * k + k];
                    let dk_row = &n_dk[off..off + k];
                    let mut total = 0.0;
                    for ((((weight, &dk), &wkf), &wkd), &rnk) in space
                        .weights
                        .iter_mut()
                        .zip(dk_row)
                        .zip(wk_frozen)
                        .zip(wk_delta)
                        .zip(&space.rnkv)
                    {
                        total += (dk + alpha) * (wkf + wkd + beta) * rnk;
                        *weight = total;
                    }

                    let new = sample_cumulative(&space.weights, total, &mut rng);
                    assignments[cursor] = new as u32;
                    n_dk[off + new] += 1.0;
                    space.delta_wk[word * k + new] += 1.0;
                    space.delta_k[new] += 1.0;
                    space.rnkv[new] = 1.0 / (frozen_k[new] + space.delta_k[new] + v_beta);
                    cursor += 1;
                }
            }
            DocCounts::Sparse(list) => {
                for &word in doc {
                    let old = assignments[cursor] as usize;
                    sparse_decrement(list, old);
                    space.delta_wk[word * k + old] -= 1.0;
                    space.delta_k[old] -= 1.0;
                    space.rnkv[old] = 1.0 / (frozen_k[old] + space.delta_k[old] + v_beta);

                    space.sparse_dk.fill(0.0);
                    for &(t, c) in list.iter() {
                        space.sparse_dk[t as usize] = f64::from(c);
                    }
                    let wk_frozen = &frozen_wk[word * k..word * k + k];
                    let wk_delta = &space.delta_wk[word * k..word * k + k];
                    let mut total = 0.0;
                    for ((((weight, &dk), &wkf), &wkd), &rnk) in space
                        .weights
                        .iter_mut()
                        .zip(&space.sparse_dk)
                        .zip(wk_frozen)
                        .zip(wk_delta)
                        .zip(&space.rnkv)
                    {
                        total += (dk + alpha) * (wkf + wkd + beta) * rnk;
                        *weight = total;
                    }

                    let new = sample_cumulative(&space.weights, total, &mut rng);
                    assignments[cursor] = new as u32;
                    sparse_increment(list, new);
                    space.delta_wk[word * k + new] += 1.0;
                    space.delta_k[new] += 1.0;
                    space.rnkv[new] = 1.0 / (frozen_k[new] + space.delta_k[new] + v_beta);
                    cursor += 1;
                }
            }
        }
    }
}

/// Adds each delta range into the matching global range and zeroes it.
fn merge_deltas(global: &mut [f64], deltas: Vec<&mut [f64]>) {
    for delta in deltas {
        for (g, d) in global.iter_mut().zip(delta.iter_mut()) {
            *g += *d;
            *d = 0.0;
        }
    }
}

/// Splits `slice` into consecutive sub-slices of the given sizes (which
/// must sum to the slice's length).
fn split_by_sizes<'a, T>(mut slice: &'a mut [T], sizes: &[usize]) -> Vec<&'a mut [T]> {
    let mut out = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let (head, tail) = slice.split_at_mut(size);
        out.push(head);
        slice = tail;
    }
    debug_assert!(slice.is_empty(), "sizes must cover the slice exactly");
    out
}

/// Derives the RNG seed of one `(sweep, block)` pair from the configured
/// seed — a splitmix64-style mix, so neighbouring sweeps/blocks get
/// uncorrelated streams and the mapping is stable across runs and thread
/// counts.
fn block_seed(seed: u64, sweep: u64, block: u64) -> u64 {
    let mut z = seed
        ^ sweep.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ block.wrapping_mul(0xD1B5_4A32_D192_ED03);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples an index proportionally to the increments of `cumulative` (a
/// running prefix sum whose last entry is `total`). Equivalent to
/// [`sample_discrete`] over the increments, but the scan compares the draw
/// against precomputed prefix sums — no serial subtraction chain.
fn sample_cumulative(cumulative: &[f64], total: f64, rng: &mut SmallRng) -> usize {
    if total <= 0.0 || !total.is_finite() {
        return rng.gen_range(0..cumulative.len());
    }
    let pick = rng.gen_range(0.0..total);
    for (idx, &bound) in cumulative.iter().enumerate() {
        if pick < bound {
            return idx;
        }
    }
    cumulative.len() - 1
}

/// Samples an index proportionally to `weights` (which sum to `total`).
pub(crate) fn sample_discrete(weights: &[f64], total: f64, rng: &mut SmallRng) -> usize {
    if total <= 0.0 || !total.is_finite() {
        return rng.gen_range(0..weights.len());
    }
    let mut pick = rng.gen_range(0.0..total);
    for (idx, &w) in weights.iter().enumerate() {
        if pick < w {
            return idx;
        }
        pick -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny corpus with two obvious themes: museum-words and park-words.
    fn themed_corpus() -> (Vec<Vec<usize>>, Vocabulary) {
        let museum_words = ["museum", "gallery", "art", "exhibition"];
        let park_words = ["park", "garden", "picnic", "lake"];
        let mut docs_str: Vec<Vec<&str>> = Vec::new();
        for i in 0..30 {
            let source: &[&str] = if i % 2 == 0 {
                &museum_words
            } else {
                &park_words
            };
            let doc: Vec<&str> = (0..6).map(|j| source[(i + j) % source.len()]).collect();
            docs_str.push(doc);
        }
        let vocab = Vocabulary::from_documents(docs_str.clone());
        let docs = docs_str.iter().map(|d| vocab.encode(d)).collect();
        (docs, vocab)
    }

    fn two_topic_config(seed: u64) -> LdaConfig {
        LdaConfig {
            num_topics: 2,
            alpha: 0.1,
            beta: 0.05,
            iterations: 150,
            seed,
            sampler: LdaSampler::Collapsed,
        }
    }

    #[test]
    fn document_topic_distributions_sum_to_one() {
        let (docs, vocab) = themed_corpus();
        let model = LdaModel::train(&docs, &vocab, two_topic_config(1)).unwrap();
        for theta in model.all_document_topics() {
            let sum: f64 = theta.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(theta.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn topic_word_distributions_sum_to_one() {
        let (docs, vocab) = themed_corpus();
        let model = LdaModel::train(&docs, &vocab, two_topic_config(2)).unwrap();
        for t in 0..model.num_topics() {
            let sum: f64 = model.topic_words(t).unwrap().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn recovers_the_two_themes() {
        let (docs, vocab) = themed_corpus();
        let model = LdaModel::train(&docs, &vocab, two_topic_config(3)).unwrap();
        // Museum documents (even indices) should concentrate on one topic and
        // park documents (odd indices) on the other.
        let museum_major: usize = {
            let theta = model.document_topics(0).unwrap();
            if theta[0] > theta[1] {
                0
            } else {
                1
            }
        };
        let park_major = 1 - museum_major;
        let mut correct = 0;
        for (idx, theta) in model.all_document_topics().rows().enumerate() {
            let major = if theta[0] > theta[1] { 0 } else { 1 };
            let expected = if idx % 2 == 0 {
                museum_major
            } else {
                park_major
            };
            if major == expected {
                correct += 1;
            }
        }
        assert!(
            correct >= 27,
            "only {correct}/30 documents matched their theme"
        );
    }

    #[test]
    fn top_words_of_a_topic_are_from_one_theme() {
        let (docs, vocab) = themed_corpus();
        let model = LdaModel::train(&docs, &vocab, two_topic_config(4)).unwrap();
        let museum_ids: Vec<usize> = ["museum", "gallery", "art", "exhibition"]
            .iter()
            .filter_map(|w| vocab.id_of(w))
            .collect();
        // For each topic, its top-4 words should be (almost) all museum words
        // or (almost) all park words.
        for t in 0..2 {
            let top = model.top_words(t, 4);
            let museum_count = top.iter().filter(|w| museum_ids.contains(w)).count();
            assert!(
                museum_count >= 3 || museum_count <= 1,
                "topic {t} mixes themes: {museum_count}/4 museum words"
            );
        }
    }

    #[test]
    fn training_is_deterministic_given_a_seed() {
        let (docs, vocab) = themed_corpus();
        let a = LdaModel::train(&docs, &vocab, two_topic_config(9)).unwrap();
        let b = LdaModel::train(&docs, &vocab, two_topic_config(9)).unwrap();
        assert_eq!(a.all_document_topics(), b.all_document_topics());
    }

    #[test]
    fn infer_assigns_new_documents_to_the_right_theme() {
        let (docs, vocab) = themed_corpus();
        let model = LdaModel::train(&docs, &vocab, two_topic_config(5)).unwrap();
        let museum_doc = vocab.encode(&["museum", "art", "gallery"]);
        let park_doc = vocab.encode(&["park", "garden", "lake"]);
        let theta_m = model.infer(&museum_doc, 50, 7);
        let theta_p = model.infer(&park_doc, 50, 7);
        let major_m = if theta_m[0] > theta_m[1] { 0 } else { 1 };
        let major_p = if theta_p[0] > theta_p[1] { 0 } else { 1 };
        assert_ne!(major_m, major_p);
    }

    #[test]
    fn infer_on_empty_or_unknown_document_is_uniform() {
        let (docs, vocab) = themed_corpus();
        let model = LdaModel::train(&docs, &vocab, two_topic_config(6)).unwrap();
        let theta = model.infer(&[], 10, 1);
        assert_eq!(theta, vec![0.5, 0.5]);
        let theta = model.infer(&[9999], 10, 1);
        assert_eq!(theta, vec![0.5, 0.5]);
    }

    #[test]
    fn invalid_configurations_are_rejected() {
        let (docs, vocab) = themed_corpus();
        let bad = LdaConfig {
            num_topics: 0,
            ..two_topic_config(1)
        };
        assert!(LdaModel::train(&docs, &vocab, bad).is_none());
        // Word id outside the vocabulary.
        let bad_docs = vec![vec![vocab.len() + 5]];
        assert!(LdaModel::train(&bad_docs, &vocab, two_topic_config(1)).is_none());
    }

    #[test]
    fn empty_documents_get_uniform_topics() {
        let (mut docs, vocab) = themed_corpus();
        docs.push(Vec::new());
        let model = LdaModel::train(&docs, &vocab, two_topic_config(8)).unwrap();
        let theta = model.document_topics(docs.len() - 1).unwrap();
        assert!((theta[0] - 0.5).abs() < 1e-9);
        assert!((theta[1] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn short_documents_take_the_sparse_path_and_sum_to_one() {
        // num_topics above every document length forces the sparse
        // per-document representation for the whole corpus.
        let (docs, vocab) = themed_corpus();
        let config = LdaConfig {
            num_topics: 8,
            iterations: 40,
            ..two_topic_config(12)
        };
        let model = LdaModel::train(&docs, &vocab, config).unwrap();
        for theta in model.all_document_topics() {
            let sum: f64 = theta.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
