//! Latent Dirichlet Allocation over POI tags.
//!
//! The paper derives restaurant and attraction *types* by applying LDA to the
//! tags users left on Foursquare (§2.2), obtaining latent topics such as
//! "art gallery, museum, library" and "garden, park, event hall". The topic
//! distribution of a POI's tag document then becomes its item vector (§3.2).
//!
//! This crate implements that substrate from scratch:
//!
//! * [`vocab`] — a tag vocabulary with word↔id mapping and tokenization.
//! * [`lda`] — a collapsed Gibbs sampler for LDA with symmetric Dirichlet
//!   priors, producing per-document topic distributions (θ) and per-topic
//!   word distributions (φ).
//! * [`poi_topics`] — glue that runs LDA over all POIs of a category in a
//!   catalog and returns per-POI topic vectors plus human-readable topic
//!   labels (the top words of each topic).
//! * [`reference`] — the seed's nested-`Vec` sampler, kept verbatim so the
//!   differential tests and the `model_training` bench can measure the flat
//!   hot path against exactly what it replaced.

pub mod lda;
pub mod poi_topics;
pub mod reference;
pub mod vocab;

pub use lda::{LdaConfig, LdaModel, LdaSampler, BLOCK_GIBBS_BLOCKS};
pub use poi_topics::{CategoryTopicModel, TopicLabel};
pub use reference::{reference_train, ReferenceLdaModel};
pub use vocab::Vocabulary;
