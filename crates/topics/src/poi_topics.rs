//! Topic models over the POIs of a catalog category.
//!
//! This is the glue the paper describes in §2.2/§3.2: run LDA over the tag
//! documents of all restaurants (or attractions) in a city, keep the
//! resulting per-POI topic distributions as item vectors, and describe each
//! topic by its most probable tags so that users can rate "types" like
//! *"garden, park, event hall"*.

use crate::lda::{LdaConfig, LdaModel};
use crate::vocab::Vocabulary;
use grouptravel_dataset::{Category, Poi, PoiCatalog, PoiId};
use grouptravel_pool::WorkerPool;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Human-readable description of a latent topic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopicLabel {
    /// Topic index.
    pub topic: usize,
    /// The most probable tags of the topic, most probable first.
    pub top_tags: Vec<String>,
}

impl TopicLabel {
    /// The label as the paper prints it, e.g. `"garden, park, event hall"`.
    #[must_use]
    pub fn display(&self) -> String {
        self.top_tags.join(", ")
    }
}

/// A trained topic model for one POI category of one catalog.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CategoryTopicModel {
    category: Category,
    vocabulary: Vocabulary,
    model: LdaModel,
    labels: Vec<TopicLabel>,
    poi_topics: HashMap<PoiId, Vec<f64>>,
}

impl CategoryTopicModel {
    /// Trains an LDA model over the tag documents of every POI of `category`
    /// in `catalog`.
    ///
    /// Returns `None` if the category has no POIs (or no tags at all) or the
    /// LDA configuration is invalid.
    #[must_use]
    pub fn train(catalog: &PoiCatalog, category: Category, config: LdaConfig) -> Option<Self> {
        Self::train_on(catalog, category, config, None)
    }

    /// [`CategoryTopicModel::train`] with an optional worker pool handed
    /// through to [`LdaModel::train_on`]. Only the block-Gibbs sampler fans
    /// out; results are identical with or without a pool.
    #[must_use]
    pub fn train_on(
        catalog: &PoiCatalog,
        category: Category,
        config: LdaConfig,
        pool: Option<&WorkerPool>,
    ) -> Option<Self> {
        let pois = catalog.by_category(category);
        if pois.is_empty() {
            return None;
        }
        let mut vocabulary = Vocabulary::new();
        let documents: Vec<Vec<usize>> = pois
            .iter()
            .map(|p| vocabulary.encode_interning(&p.tags))
            .collect();
        if vocabulary.is_empty() {
            return None;
        }
        let model = LdaModel::train_on(&documents, &vocabulary, config, pool)?;

        let labels = (0..model.num_topics())
            .map(|t| TopicLabel {
                topic: t,
                top_tags: model
                    .top_words(t, 3)
                    .into_iter()
                    .filter_map(|w| vocabulary.word_of(w).map(str::to_string))
                    .collect(),
            })
            .collect();

        let poi_topics = pois
            .iter()
            .enumerate()
            .map(|(idx, p)| {
                (
                    p.id,
                    model
                        .document_topics(idx)
                        .map(<[f64]>::to_vec)
                        .unwrap_or_else(|| vec![1.0 / config.num_topics as f64; config.num_topics]),
                )
            })
            .collect();

        Some(Self {
            category,
            vocabulary,
            model,
            labels,
            poi_topics,
        })
    }

    /// The category this model covers.
    #[must_use]
    pub fn category(&self) -> Category {
        self.category
    }

    /// Number of topics (= dimensionality of item vectors for this category).
    #[must_use]
    pub fn num_topics(&self) -> usize {
        self.model.num_topics()
    }

    /// Human-readable labels of all topics.
    #[must_use]
    pub fn labels(&self) -> &[TopicLabel] {
        &self.labels
    }

    /// The topic distribution (item vector) of a POI seen during training.
    #[must_use]
    pub fn topics_of(&self, id: PoiId) -> Option<&[f64]> {
        self.poi_topics.get(&id).map(Vec::as_slice)
    }

    /// Topic distribution of an arbitrary POI, folding in its tags if it was
    /// not part of the training catalog.
    #[must_use]
    pub fn topics_of_poi(&self, poi: &Poi) -> Vec<f64> {
        if let Some(known) = self.topics_of(poi.id) {
            return known.to_vec();
        }
        let encoded = self.vocabulary.encode(&poi.tags);
        self.model.infer(&encoded, 30, poi.id.0)
    }

    /// The underlying vocabulary.
    #[must_use]
    pub fn vocabulary(&self) -> &Vocabulary {
        &self.vocabulary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grouptravel_dataset::{CitySpec, SyntheticCityConfig, SyntheticCityGenerator};

    fn paris() -> PoiCatalog {
        SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(21)).generate()
    }

    fn config() -> LdaConfig {
        LdaConfig {
            num_topics: 4,
            iterations: 80,
            ..LdaConfig::default()
        }
    }

    #[test]
    fn trains_on_attractions_and_covers_every_poi() {
        let catalog = paris();
        let model = CategoryTopicModel::train(&catalog, Category::Attraction, config()).unwrap();
        assert_eq!(model.category(), Category::Attraction);
        assert_eq!(model.num_topics(), 4);
        for poi in catalog.by_category(Category::Attraction) {
            let topics = model.topics_of(poi.id).unwrap();
            let sum: f64 = topics.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn labels_have_three_tags_each() {
        let catalog = paris();
        let model = CategoryTopicModel::train(&catalog, Category::Restaurant, config()).unwrap();
        assert_eq!(model.labels().len(), 4);
        for label in model.labels() {
            assert!(!label.top_tags.is_empty());
            assert!(label.top_tags.len() <= 3);
            assert!(!label.display().is_empty());
        }
    }

    #[test]
    fn unknown_poi_topics_are_inferred_from_tags() {
        let catalog = paris();
        let model = CategoryTopicModel::train(&catalog, Category::Attraction, config()).unwrap();
        let mut foreign = catalog.by_category(Category::Attraction)[0].clone();
        foreign.id = PoiId(999_999);
        let topics = model.topics_of_poi(&foreign);
        assert_eq!(topics.len(), 4);
        let sum: f64 = topics.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_category_returns_none() {
        let empty = PoiCatalog::new("Empty", vec![]);
        assert!(CategoryTopicModel::train(&empty, Category::Restaurant, config()).is_none());
    }
}
