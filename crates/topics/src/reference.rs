//! The seed LDA trainer, kept as a reference.
//!
//! This is the nested-`Vec` collapsed Gibbs sampler the flat
//! [`crate::LdaModel::train`] replaced. It exists so the differential test
//! suite can prove the flat sampler is **bit-identical** (same seeds ⇒ same
//! topic assignments and θ/φ floats), and so the `model_training` bench and
//! `model_training_report` binary measure the flat path against exactly
//! what it replaced.
//!
//! Do not "fix" or speed up this module: its value is bit-for-bit fidelity
//! to the seed algorithm.

use crate::lda::{sample_discrete, LdaConfig};
use crate::vocab::Vocabulary;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The seed trainer's outputs: θ, φ, and the final token assignments.
#[derive(Debug, Clone, PartialEq)]
pub struct ReferenceLdaModel {
    /// Per-document topic distributions θ, one row per training document.
    pub doc_topic: Vec<Vec<f64>>,
    /// Per-topic word distributions φ, `num_topics × vocab_size`.
    pub topic_word: Vec<Vec<f64>>,
    /// Final topic assignment of every token, per document.
    pub assignments: Vec<Vec<usize>>,
}

/// Runs the seed training algorithm. Same preconditions and `None` cases as
/// [`crate::LdaModel::train`].
#[must_use]
pub fn reference_train(
    documents: &[Vec<usize>],
    vocabulary: &Vocabulary,
    config: LdaConfig,
) -> Option<ReferenceLdaModel> {
    let k = config.num_topics;
    let v = vocabulary.len();
    if k == 0 {
        return None;
    }
    if v == 0 && documents.iter().any(|d| !d.is_empty()) {
        return None;
    }
    if documents.iter().flatten().any(|&w| w >= v) {
        return None;
    }

    let mut rng = SmallRng::seed_from_u64(config.seed);
    let d = documents.len();

    let mut n_dk = vec![vec![0usize; k]; d];
    let mut n_kw = vec![vec![0usize; v.max(1)]; k];
    let mut n_k = vec![0usize; k];
    let mut assignments: Vec<Vec<usize>> = Vec::with_capacity(d);

    for (doc_idx, doc) in documents.iter().enumerate() {
        let mut doc_assign = Vec::with_capacity(doc.len());
        for &word in doc {
            let topic = rng.gen_range(0..k);
            n_dk[doc_idx][topic] += 1;
            n_kw[topic][word] += 1;
            n_k[topic] += 1;
            doc_assign.push(topic);
        }
        assignments.push(doc_assign);
    }

    let alpha = config.alpha;
    let beta = config.beta;
    let v_beta = beta * v as f64;
    let mut weights = vec![0.0f64; k];

    for _ in 0..config.iterations {
        for (doc_idx, doc) in documents.iter().enumerate() {
            for (pos, &word) in doc.iter().enumerate() {
                let old_topic = assignments[doc_idx][pos];
                n_dk[doc_idx][old_topic] -= 1;
                n_kw[old_topic][word] -= 1;
                n_k[old_topic] -= 1;

                let mut total = 0.0;
                for (t, weight) in weights.iter_mut().enumerate() {
                    let w = (n_dk[doc_idx][t] as f64 + alpha) * (n_kw[t][word] as f64 + beta)
                        / (n_k[t] as f64 + v_beta);
                    *weight = w;
                    total += w;
                }

                let new_topic = sample_discrete(&weights, total, &mut rng);
                assignments[doc_idx][pos] = new_topic;
                n_dk[doc_idx][new_topic] += 1;
                n_kw[new_topic][word] += 1;
                n_k[new_topic] += 1;
            }
        }
    }

    let doc_topic = n_dk
        .iter()
        .zip(documents)
        .map(|(counts, doc)| {
            let total = doc.len() as f64 + alpha * k as f64;
            counts.iter().map(|&c| (c as f64 + alpha) / total).collect()
        })
        .collect();

    let topic_word = n_kw
        .iter()
        .zip(&n_k)
        .map(|(counts, &total)| {
            let denom = total as f64 + v_beta;
            counts.iter().map(|&c| (c as f64 + beta) / denom).collect()
        })
        .collect();

    Some(ReferenceLdaModel {
        doc_topic,
        topic_word,
        assignments,
    })
}
