//! Tag vocabulary: maps tag strings to dense word ids and back.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A bidirectional mapping between tag strings and dense word ids.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocabulary {
    words: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, usize>,
}

impl Vocabulary {
    /// Creates an empty vocabulary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a vocabulary from an iterator of documents, where each document
    /// is an iterator of tag strings. Word ids are assigned in first-seen
    /// order.
    pub fn from_documents<D, W, S>(documents: D) -> Self
    where
        D: IntoIterator<Item = W>,
        W: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut vocab = Self::new();
        for doc in documents {
            for word in doc {
                vocab.intern(word.as_ref());
            }
        }
        vocab
    }

    /// Rebuilds the string→id index (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .words
            .iter()
            .enumerate()
            .map(|(i, w)| (w.clone(), i))
            .collect();
    }

    /// Returns the id for `word`, adding it if unseen.
    pub fn intern(&mut self, word: &str) -> usize {
        if let Some(&id) = self.index.get(word) {
            return id;
        }
        let id = self.words.len();
        self.words.push(word.to_string());
        self.index.insert(word.to_string(), id);
        id
    }

    /// Id of a word, if it has been interned.
    #[must_use]
    pub fn id_of(&self, word: &str) -> Option<usize> {
        self.index.get(word).copied()
    }

    /// Word for an id.
    #[must_use]
    pub fn word_of(&self, id: usize) -> Option<&str> {
        self.words.get(id).map(String::as_str)
    }

    /// Number of distinct words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the vocabulary is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Encodes a document (slice of tag strings) as word ids, skipping
    /// unknown words.
    #[must_use]
    pub fn encode<S: AsRef<str>>(&self, document: &[S]) -> Vec<usize> {
        document
            .iter()
            .filter_map(|w| self.id_of(w.as_ref()))
            .collect()
    }

    /// Encodes a document, interning unseen words.
    pub fn encode_interning<S: AsRef<str>>(&mut self, document: &[S]) -> Vec<usize> {
        document.iter().map(|w| self.intern(w.as_ref())).collect()
    }

    /// All words in id order.
    #[must_use]
    pub fn words(&self) -> &[String] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_assigns_sequential_ids() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("museum"), 0);
        assert_eq!(v.intern("park"), 1);
        assert_eq!(v.intern("museum"), 0);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn from_documents_collects_all_words() {
        let docs = vec![vec!["a", "b"], vec!["b", "c"]];
        let v = Vocabulary::from_documents(docs);
        assert_eq!(v.len(), 3);
        assert_eq!(v.id_of("c"), Some(2));
        assert_eq!(v.word_of(0), Some("a"));
        assert_eq!(v.word_of(7), None);
    }

    #[test]
    fn encode_skips_unknown_words() {
        let v = Vocabulary::from_documents(vec![vec!["a", "b"]]);
        assert_eq!(v.encode(&["a", "zzz", "b"]), vec![0, 1]);
    }

    #[test]
    fn encode_interning_adds_unknown_words() {
        let mut v = Vocabulary::from_documents(vec![vec!["a"]]);
        assert_eq!(v.encode_interning(&["a", "new"]), vec![0, 1]);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn rebuild_index_restores_lookup_after_serde() {
        let v = Vocabulary::from_documents(vec![vec!["a", "b", "c"]]);
        let json = serde_json::to_string(&v).unwrap();
        let mut back: Vocabulary = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id_of("b"), None); // index skipped by serde
        back.rebuild_index();
        assert_eq!(back.id_of("b"), Some(1));
    }
}
