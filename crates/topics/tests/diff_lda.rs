//! Differential tests: the flat, word-major Gibbs sampler must reproduce
//! the seed implementation (preserved in `grouptravel_topics::reference`).
//!
//! The contract: identical topic assignments under equal seeds, and θ/φ
//! equal to the bit. The flat sampler keeps the seed's counts, RNG draw
//! sequence, and θ/φ derivation exactly; two rounding differences remain:
//! the incrementally cached reciprocal denominator (`x · (1/y)` instead of
//! `x / y`) and the cumulative sampling scan (the draw compared against
//! rounded prefix sums rather than serially decremented per topic), each
//! ≤ 1 ulp per sampling boundary. An ulp-perturbed boundary can only
//! change a draw that lands within an ulp of it — measure zero in
//! practice — and because θ/φ are derived from the (integer) counts by
//! the seed's exact expressions, identical assignments imply bit-identical
//! distributions. These tests therefore assert `to_bits` equality across a
//! range of corpora, topic counts, and seeds: any real divergence would be
//! macroscopic (a flipped draw cascades through the chain), deterministic,
//! and caught here.

use grouptravel_topics::reference::reference_train;
use grouptravel_topics::{LdaConfig, LdaModel, Vocabulary};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A synthetic corpus with `docs` documents of length `min_len..=max_len`
/// over a `vocab_size`-word vocabulary, with loose per-document themes.
fn synthetic_corpus(
    docs: usize,
    vocab_size: usize,
    min_len: usize,
    max_len: usize,
    seed: u64,
) -> (Vec<Vec<usize>>, Vocabulary) {
    let words: Vec<String> = (0..vocab_size).map(|i| format!("tag{i}")).collect();
    let docs_str: Vec<Vec<&str>> = {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..docs)
            .map(|_| {
                let len = rng.gen_range(min_len..=max_len);
                let theme = rng.gen_range(0..vocab_size.max(1));
                (0..len)
                    .map(|_| {
                        // Cluster words loosely around the theme so topics
                        // are learnable, with some uniform noise.
                        let w = if rng.gen_bool(0.7) {
                            (theme + rng.gen_range(0..1 + vocab_size / 8)) % vocab_size
                        } else {
                            rng.gen_range(0..vocab_size)
                        };
                        words[w].as_str()
                    })
                    .collect()
            })
            .collect()
    };
    let vocab = Vocabulary::from_documents(docs_str.clone());
    let encoded = docs_str.iter().map(|d| vocab.encode(d)).collect();
    (encoded, vocab)
}

fn assert_bit_identical(flat: &LdaModel, corpus_docs: usize, config: LdaConfig, context: &str) {
    let k = config.num_topics;
    assert_eq!(flat.all_document_topics().nrows(), corpus_docs, "{context}");
    for (idx, theta) in flat.all_document_topics().rows().enumerate() {
        assert_eq!(theta.len(), k, "{context}: θ row {idx} length");
    }
}

#[test]
fn flat_sampler_is_bit_identical_to_the_seed() {
    for (docs, vocab_size, min_len, max_len, seed) in [
        (40usize, 30usize, 3usize, 9usize, 1u64),
        (120, 80, 2, 14, 2),
        (60, 12, 1, 5, 3),
    ] {
        let (encoded, vocab) = synthetic_corpus(docs, vocab_size, min_len, max_len, seed);
        for num_topics in [2usize, 4, 8] {
            let config = LdaConfig {
                num_topics,
                iterations: 60,
                seed: seed * 100 + num_topics as u64,
                ..LdaConfig::default()
            };
            let flat = LdaModel::train(&encoded, &vocab, config).unwrap();
            let reference = reference_train(&encoded, &vocab, config).unwrap();
            let context = format!("docs={docs} v={vocab_size} k={num_topics}");
            assert_bit_identical(&flat, docs, config, &context);

            for (idx, (flat_theta, seed_theta)) in flat
                .all_document_topics()
                .rows()
                .zip(&reference.doc_topic)
                .enumerate()
            {
                for (a, b) in flat_theta.iter().zip(seed_theta) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{context}: θ of document {idx} diverged"
                    );
                }
            }
            for (t, seed_phi) in reference.topic_word.iter().enumerate() {
                let flat_phi = flat.topic_words(t).unwrap();
                for (a, b) in flat_phi.iter().zip(seed_phi) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{context}: φ of topic {t}");
                }
            }
        }
    }
}

#[test]
fn document_hard_topics_match_the_seed_assignments() {
    // The per-document argmax topic — what `poi_topics` ultimately consumes
    // — agrees with the seed's final token assignments.
    let (encoded, vocab) = synthetic_corpus(50, 24, 2, 8, 9);
    let config = LdaConfig {
        num_topics: 3,
        iterations: 80,
        seed: 77,
        ..LdaConfig::default()
    };
    let flat = LdaModel::train(&encoded, &vocab, config).unwrap();
    let reference = reference_train(&encoded, &vocab, config).unwrap();
    for (idx, (theta, seed_theta)) in flat
        .all_document_topics()
        .rows()
        .zip(&reference.doc_topic)
        .enumerate()
    {
        let argmax = |row: &[f64]| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        assert_eq!(
            argmax(theta),
            argmax(seed_theta),
            "document {idx} hard topic diverged"
        );
    }
}

#[test]
fn sparse_short_document_path_is_exact() {
    // Every document shorter than k: the whole corpus runs on the sparse
    // (topic, count) lists, and must still be bit-identical to the seed's
    // dense rows.
    let (encoded, vocab) = synthetic_corpus(80, 40, 1, 5, 4);
    let config = LdaConfig {
        num_topics: 16,
        iterations: 50,
        seed: 1234,
        ..LdaConfig::default()
    };
    assert!(encoded.iter().all(|d| d.len() < config.num_topics));
    let flat = LdaModel::train(&encoded, &vocab, config).unwrap();
    let reference = reference_train(&encoded, &vocab, config).unwrap();
    for (flat_theta, seed_theta) in flat.all_document_topics().rows().zip(&reference.doc_topic) {
        for (a, b) in flat_theta.iter().zip(seed_theta) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn mixed_sparse_and_dense_documents_are_exact() {
    // Documents straddling the len < k threshold exercise both per-document
    // representations in one corpus.
    let (encoded, vocab) = synthetic_corpus(100, 32, 1, 12, 5);
    let config = LdaConfig {
        num_topics: 6,
        iterations: 60,
        seed: 4321,
        ..LdaConfig::default()
    };
    assert!(encoded.iter().any(|d| d.len() < config.num_topics));
    assert!(encoded.iter().any(|d| d.len() >= config.num_topics));
    let flat = LdaModel::train(&encoded, &vocab, config).unwrap();
    let reference = reference_train(&encoded, &vocab, config).unwrap();
    for (flat_theta, seed_theta) in flat.all_document_topics().rows().zip(&reference.doc_topic) {
        for (a, b) in flat_theta.iter().zip(seed_theta) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn empty_documents_and_edge_configs_match() {
    let (mut encoded, vocab) = synthetic_corpus(20, 10, 2, 6, 6);
    encoded.insert(0, Vec::new());
    encoded.push(Vec::new());
    let config = LdaConfig {
        num_topics: 4,
        iterations: 30,
        seed: 8,
        ..LdaConfig::default()
    };
    let flat = LdaModel::train(&encoded, &vocab, config).unwrap();
    let reference = reference_train(&encoded, &vocab, config).unwrap();
    for (flat_theta, seed_theta) in flat.all_document_topics().rows().zip(&reference.doc_topic) {
        for (a, b) in flat_theta.iter().zip(seed_theta) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    // Rejections agree too.
    let bad = LdaConfig {
        num_topics: 0,
        ..config
    };
    assert!(LdaModel::train(&encoded, &vocab, bad).is_none());
    assert!(reference_train(&encoded, &vocab, bad).is_none());
}
