//! Differential tests: the flat, word-major Gibbs sampler must reproduce
//! the seed implementation (preserved in `grouptravel_topics::reference`).
//!
//! The contract: identical topic assignments under equal seeds, and θ/φ
//! equal to the bit. The flat sampler keeps the seed's counts, RNG draw
//! sequence, and θ/φ derivation exactly; two rounding differences remain:
//! the incrementally cached reciprocal denominator (`x · (1/y)` instead of
//! `x / y`) and the cumulative sampling scan (the draw compared against
//! rounded prefix sums rather than serially decremented per topic), each
//! ≤ 1 ulp per sampling boundary. An ulp-perturbed boundary can only
//! change a draw that lands within an ulp of it — measure zero in
//! practice — and because θ/φ are derived from the (integer) counts by
//! the seed's exact expressions, identical assignments imply bit-identical
//! distributions. These tests therefore assert `to_bits` equality across a
//! range of corpora, topic counts, and seeds: any real divergence would be
//! macroscopic (a flipped draw cascades through the chain), deterministic,
//! and caught here.

use grouptravel_topics::reference::reference_train;
use grouptravel_topics::{LdaConfig, LdaModel, Vocabulary};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A synthetic corpus with `docs` documents of length `min_len..=max_len`
/// over a `vocab_size`-word vocabulary, with loose per-document themes.
fn synthetic_corpus(
    docs: usize,
    vocab_size: usize,
    min_len: usize,
    max_len: usize,
    seed: u64,
) -> (Vec<Vec<usize>>, Vocabulary) {
    let words: Vec<String> = (0..vocab_size).map(|i| format!("tag{i}")).collect();
    let docs_str: Vec<Vec<&str>> = {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..docs)
            .map(|_| {
                let len = rng.gen_range(min_len..=max_len);
                let theme = rng.gen_range(0..vocab_size.max(1));
                (0..len)
                    .map(|_| {
                        // Cluster words loosely around the theme so topics
                        // are learnable, with some uniform noise.
                        let w = if rng.gen_bool(0.7) {
                            (theme + rng.gen_range(0..1 + vocab_size / 8)) % vocab_size
                        } else {
                            rng.gen_range(0..vocab_size)
                        };
                        words[w].as_str()
                    })
                    .collect()
            })
            .collect()
    };
    let vocab = Vocabulary::from_documents(docs_str.clone());
    let encoded = docs_str.iter().map(|d| vocab.encode(d)).collect();
    (encoded, vocab)
}

fn assert_bit_identical(flat: &LdaModel, corpus_docs: usize, config: LdaConfig, context: &str) {
    let k = config.num_topics;
    assert_eq!(flat.all_document_topics().nrows(), corpus_docs, "{context}");
    for (idx, theta) in flat.all_document_topics().rows().enumerate() {
        assert_eq!(theta.len(), k, "{context}: θ row {idx} length");
    }
}

#[test]
fn flat_sampler_is_bit_identical_to_the_seed() {
    for (docs, vocab_size, min_len, max_len, seed) in [
        (40usize, 30usize, 3usize, 9usize, 1u64),
        (120, 80, 2, 14, 2),
        (60, 12, 1, 5, 3),
    ] {
        let (encoded, vocab) = synthetic_corpus(docs, vocab_size, min_len, max_len, seed);
        for num_topics in [2usize, 4, 8] {
            let config = LdaConfig {
                num_topics,
                iterations: 60,
                seed: seed * 100 + num_topics as u64,
                ..LdaConfig::default()
            };
            let flat = LdaModel::train(&encoded, &vocab, config).unwrap();
            let reference = reference_train(&encoded, &vocab, config).unwrap();
            let context = format!("docs={docs} v={vocab_size} k={num_topics}");
            assert_bit_identical(&flat, docs, config, &context);

            for (idx, (flat_theta, seed_theta)) in flat
                .all_document_topics()
                .rows()
                .zip(&reference.doc_topic)
                .enumerate()
            {
                for (a, b) in flat_theta.iter().zip(seed_theta) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{context}: θ of document {idx} diverged"
                    );
                }
            }
            for (t, seed_phi) in reference.topic_word.iter().enumerate() {
                let flat_phi = flat.topic_words(t).unwrap();
                for (a, b) in flat_phi.iter().zip(seed_phi) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{context}: φ of topic {t}");
                }
            }
        }
    }
}

#[test]
fn document_hard_topics_match_the_seed_assignments() {
    // The per-document argmax topic — what `poi_topics` ultimately consumes
    // — agrees with the seed's final token assignments.
    let (encoded, vocab) = synthetic_corpus(50, 24, 2, 8, 9);
    let config = LdaConfig {
        num_topics: 3,
        iterations: 80,
        seed: 77,
        ..LdaConfig::default()
    };
    let flat = LdaModel::train(&encoded, &vocab, config).unwrap();
    let reference = reference_train(&encoded, &vocab, config).unwrap();
    for (idx, (theta, seed_theta)) in flat
        .all_document_topics()
        .rows()
        .zip(&reference.doc_topic)
        .enumerate()
    {
        let argmax = |row: &[f64]| {
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap()
        };
        assert_eq!(
            argmax(theta),
            argmax(seed_theta),
            "document {idx} hard topic diverged"
        );
    }
}

#[test]
fn sparse_short_document_path_is_exact() {
    // Every document shorter than k: the whole corpus runs on the sparse
    // (topic, count) lists, and must still be bit-identical to the seed's
    // dense rows.
    let (encoded, vocab) = synthetic_corpus(80, 40, 1, 5, 4);
    let config = LdaConfig {
        num_topics: 16,
        iterations: 50,
        seed: 1234,
        ..LdaConfig::default()
    };
    assert!(encoded.iter().all(|d| d.len() < config.num_topics));
    let flat = LdaModel::train(&encoded, &vocab, config).unwrap();
    let reference = reference_train(&encoded, &vocab, config).unwrap();
    for (flat_theta, seed_theta) in flat.all_document_topics().rows().zip(&reference.doc_topic) {
        for (a, b) in flat_theta.iter().zip(seed_theta) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn mixed_sparse_and_dense_documents_are_exact() {
    // Documents straddling the len < k threshold exercise both per-document
    // representations in one corpus.
    let (encoded, vocab) = synthetic_corpus(100, 32, 1, 12, 5);
    let config = LdaConfig {
        num_topics: 6,
        iterations: 60,
        seed: 4321,
        ..LdaConfig::default()
    };
    assert!(encoded.iter().any(|d| d.len() < config.num_topics));
    assert!(encoded.iter().any(|d| d.len() >= config.num_topics));
    let flat = LdaModel::train(&encoded, &vocab, config).unwrap();
    let reference = reference_train(&encoded, &vocab, config).unwrap();
    for (flat_theta, seed_theta) in flat.all_document_topics().rows().zip(&reference.doc_topic) {
        for (a, b) in flat_theta.iter().zip(seed_theta) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[test]
fn empty_documents_and_edge_configs_match() {
    let (mut encoded, vocab) = synthetic_corpus(20, 10, 2, 6, 6);
    encoded.insert(0, Vec::new());
    encoded.push(Vec::new());
    let config = LdaConfig {
        num_topics: 4,
        iterations: 30,
        seed: 8,
        ..LdaConfig::default()
    };
    let flat = LdaModel::train(&encoded, &vocab, config).unwrap();
    let reference = reference_train(&encoded, &vocab, config).unwrap();
    for (flat_theta, seed_theta) in flat.all_document_topics().rows().zip(&reference.doc_topic) {
        for (a, b) in flat_theta.iter().zip(seed_theta) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    // Rejections agree too.
    let bad = LdaConfig {
        num_topics: 0,
        ..config
    };
    assert!(LdaModel::train(&encoded, &vocab, bad).is_none());
    assert!(reference_train(&encoded, &vocab, bad).is_none());
}

// ---------------------------------------------------------------------------
// Versioned block-Gibbs sampler (`LdaSampler::BlockGibbsV1`)
// ---------------------------------------------------------------------------
//
// The block sampler is a *versioned alternative*, not a drop-in equal of the
// collapsed chain: it freezes the global word–topic counts per sweep and
// samples 16 fixed document blocks against that snapshot (AD-LDA). Its own
// contract, pinned here, is determinism: the model is a function of
// (corpus, config) alone — independent of the pool width, bit-identical
// across runs and thread counts — and the default `Collapsed` sampler's
// output is untouched by the new config field.

use grouptravel_pool::WorkerPool;
use grouptravel_topics::LdaSampler;

fn assert_models_bit_identical(a: &LdaModel, b: &LdaModel, context: &str) {
    let at = a.all_document_topics();
    let bt = b.all_document_topics();
    assert_eq!(at.nrows(), bt.nrows(), "{context}: θ row count");
    for (idx, (ra, rb)) in at.rows().zip(bt.rows()).enumerate() {
        for (x, y) in ra.iter().zip(rb) {
            assert_eq!(x.to_bits(), y.to_bits(), "{context}: θ row {idx}");
        }
    }
    assert_eq!(a.num_topics(), b.num_topics(), "{context}: topic count");
    for t in 0..a.num_topics() {
        let pa = a.topic_words(t).unwrap();
        let pb = b.topic_words(t).unwrap();
        for (x, y) in pa.iter().zip(pb) {
            assert_eq!(x.to_bits(), y.to_bits(), "{context}: φ topic {t}");
        }
    }
}

fn block_config(num_topics: usize, seed: u64) -> LdaConfig {
    LdaConfig {
        num_topics,
        iterations: 40,
        seed,
        sampler: LdaSampler::BlockGibbsV1,
        ..LdaConfig::default()
    }
}

#[test]
fn block_sampler_is_pool_width_independent() {
    // block@None ≡ block@{2,4,8} workers, to the bit: the fixed block grid
    // and per-(sweep, block) derived RNG streams make the result a function
    // of the corpus and config only, never of who executed which block.
    let (encoded, vocab) = synthetic_corpus(90, 40, 2, 10, 21);
    for num_topics in [3usize, 8] {
        let config = block_config(num_topics, 400 + num_topics as u64);
        let inline = LdaModel::train_on(&encoded, &vocab, config, None).unwrap();
        for threads in [2usize, 4, 8] {
            let pool = WorkerPool::new(threads);
            let pooled = LdaModel::train_on(&encoded, &vocab, config, Some(&pool)).unwrap();
            let context = format!("k={num_topics} threads={threads}");
            assert_models_bit_identical(&pooled, &inline, &context);
        }
    }
}

#[test]
fn block_sampler_runs_are_reproducible_at_the_same_thread_count() {
    // The acceptance bar: two identical runs at the same thread count
    // produce bit-identical models, T ∈ {2, 8}.
    let (encoded, vocab) = synthetic_corpus(70, 30, 2, 9, 33);
    let config = block_config(4, 512);
    for threads in [2usize, 8] {
        let pool_a = WorkerPool::new(threads);
        let pool_b = WorkerPool::new(threads);
        let run_a = LdaModel::train_on(&encoded, &vocab, config, Some(&pool_a)).unwrap();
        let run_b = LdaModel::train_on(&encoded, &vocab, config, Some(&pool_b)).unwrap();
        assert_models_bit_identical(&run_a, &run_b, &format!("repeat at T={threads}"));
    }
}

#[test]
fn default_collapsed_sampler_is_unchanged_by_the_sampler_field() {
    // The versioned-sampler contract: `Collapsed` stays the default and
    // still reproduces the seed chain bit-for-bit; a pool handle is ignored.
    let (encoded, vocab) = synthetic_corpus(50, 24, 2, 8, 5);
    let config = LdaConfig {
        num_topics: 4,
        iterations: 50,
        seed: 99,
        ..LdaConfig::default()
    };
    assert!(matches!(config.sampler, LdaSampler::Collapsed));
    let pool = WorkerPool::new(4);
    let with_pool = LdaModel::train_on(&encoded, &vocab, config, Some(&pool)).unwrap();
    let without = LdaModel::train(&encoded, &vocab, config).unwrap();
    let reference = reference_train(&encoded, &vocab, config).unwrap();
    assert_models_bit_identical(&with_pool, &without, "collapsed, pool vs none");
    for (flat_theta, seed_theta) in with_pool
        .all_document_topics()
        .rows()
        .zip(&reference.doc_topic)
    {
        for (a, b) in flat_theta.iter().zip(seed_theta) {
            assert_eq!(a.to_bits(), b.to_bits(), "collapsed θ vs seed reference");
        }
    }
}

#[test]
fn cache_key_separates_the_samplers() {
    let collapsed = LdaConfig {
        num_topics: 4,
        iterations: 40,
        seed: 7,
        ..LdaConfig::default()
    };
    let block = LdaConfig {
        sampler: LdaSampler::BlockGibbsV1,
        ..collapsed
    };
    assert_ne!(
        collapsed.cache_key(),
        block.cache_key(),
        "switching samplers must miss the model cache"
    );
}

#[test]
fn block_sampler_produces_valid_learnable_topics() {
    // Model-quality sanity on the block sampler itself: θ rows are
    // distributions, and documents sharing a theme land on the same
    // hard topic more often than chance.
    let (encoded, vocab) = synthetic_corpus(120, 16, 4, 10, 61);
    let config = block_config(4, 777);
    let pool = WorkerPool::new(4);
    let model = LdaModel::train_on(&encoded, &vocab, config, Some(&pool)).unwrap();
    assert_eq!(model.all_document_topics().nrows(), encoded.len());
    for (idx, theta) in model.all_document_topics().rows().enumerate() {
        let sum: f64 = theta.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "θ row {idx} sums to {sum}, not 1");
        assert!(theta.iter().all(|&p| p > 0.0), "θ row {idx} has a zero");
    }
    for t in 0..model.num_topics() {
        let phi = model.topic_words(t).unwrap();
        let sum: f64 = phi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "φ topic {t} sums to {sum}");
    }
}

#[test]
fn block_sampler_handles_empty_documents_and_tiny_corpora() {
    let vocab = Vocabulary::from_documents(vec![vec!["a", "b", "c"]]);
    let docs: Vec<Vec<usize>> = vec![vec![0, 1], vec![], vec![2, 2, 1], vec![]];
    let config = block_config(3, 13);
    let pool = WorkerPool::new(4);
    let pooled = LdaModel::train_on(&docs, &vocab, config, Some(&pool)).unwrap();
    let inline = LdaModel::train_on(&docs, &vocab, config, None).unwrap();
    assert_models_bit_identical(&pooled, &inline, "tiny corpus with empty docs");
    // Empty documents get the uniform distribution, as with the collapsed
    // sampler.
    let uniform = 1.0 / 3.0;
    let theta = pooled.document_topics(1).unwrap();
    for &p in theta {
        assert!((p - uniform).abs() < 1e-12, "empty doc θ should be uniform");
    }
}
