//! Property-based tests for the flat LDA sampler: whatever the corpus
//! shape, θ rows and φ rows are probability distributions.

use grouptravel_topics::{LdaConfig, LdaModel, Vocabulary};
use proptest::prelude::*;

fn corpus_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    // Word ids in 0..12 over documents of length 0..10.
    prop::collection::vec(prop::collection::vec(0usize..12, 0..10), 1..25)
}

fn vocab_of_twelve() -> Vocabulary {
    let words: Vec<Vec<&'static str>> = vec![vec![
        "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "t9", "t10", "t11",
    ]];
    Vocabulary::from_documents(words)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn document_topic_rows_sum_to_one(
        docs in corpus_strategy(),
        k in 1usize..9,
        seed in 0u64..500,
    ) {
        let vocab = vocab_of_twelve();
        let config = LdaConfig {
            num_topics: k,
            iterations: 15,
            seed,
            ..LdaConfig::default()
        };
        let model = LdaModel::train(&docs, &vocab, config).expect("valid corpus");
        prop_assert_eq!(model.all_document_topics().nrows(), docs.len());
        for theta in model.all_document_topics() {
            prop_assert_eq!(theta.len(), k);
            let sum: f64 = theta.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "θ sums to {sum}");
            prop_assert!(theta.iter().all(|&p| p > 0.0), "θ has a non-positive entry");
        }
    }

    #[test]
    fn topic_word_rows_sum_to_one(
        docs in corpus_strategy(),
        k in 1usize..9,
        seed in 0u64..500,
    ) {
        let vocab = vocab_of_twelve();
        let config = LdaConfig {
            num_topics: k,
            iterations: 15,
            seed,
            ..LdaConfig::default()
        };
        let model = LdaModel::train(&docs, &vocab, config).expect("valid corpus");
        for t in 0..k {
            let phi = model.topic_words(t).expect("topic in range");
            let sum: f64 = phi.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9, "φ of topic {t} sums to {sum}");
            prop_assert!(phi.iter().all(|&p| p > 0.0));
        }
    }
}
