//! Consensus showdown: how the four consensus functions behave as groups get
//! bigger and more diverse (§4.3 in miniature).
//!
//! For every group size and uniformity class the example builds a package per
//! consensus method and prints the three optimization dimensions plus the
//! agreement with the group's median user, so the trade-offs discussed in the
//! paper (least misery protects the unhappiest member but kills
//! personalization, disagreement-based methods balance the group, large
//! groups dilute individual preferences) can be seen directly.
//!
//! Run with: `cargo run --release --example consensus_showdown`

use grouptravel::prelude::*;

fn main() {
    let catalog = SyntheticCityGenerator::new(
        CitySpec::paris(),
        SyntheticCityConfig {
            counts: [60, 40, 120, 120],
            ..SyntheticCityConfig::default()
        },
    )
    .generate();
    let session = GroupTravelSession::new(catalog, SessionConfig::default())
        .expect("the synthetic catalog is never empty");
    let query = GroupQuery::paper_default();
    let mut generator = SyntheticGroupGenerator::new(session.profile_schema(), 2024);

    println!(
        "{:<12} {:<7} {:<24} {:>6} {:>7} {:>6} {:>13}",
        "uniformity", "size", "consensus", "R", "C", "P", "median-agree"
    );
    for uniformity in Uniformity::ALL {
        for size in GroupSize::ALL {
            let group = generator.group(size, uniformity);
            // The median user's own package, for the sacrifice comparison.
            let median_package_dims = group.median_user().map(|median| {
                let median_group = Group::new(group.group_id, vec![median.clone()]);
                let median_profile = median_group.profile(ConsensusMethod::average_preference());
                let package = session
                    .build_package(&median_profile, &query, &BuildConfig::default())
                    .expect("median package");
                session.measure(&package, &median_profile)
            });

            for method in ConsensusMethod::paper_variants() {
                let profile = group.profile(method);
                let package = session
                    .build_package(&profile, &query, &BuildConfig::default())
                    .expect("group package");
                let dims = session.measure(&package, &profile);
                let median_agreement = median_package_dims
                    .as_ref()
                    .map(|m| {
                        let scale = m.personalization.max(dims.personalization).max(1e-9);
                        1.0 - ((m.personalization - dims.personalization).abs() / scale)
                    })
                    .unwrap_or(0.0);
                println!(
                    "{:<12} {:<7} {:<24} {:>6.1} {:>7.1} {:>6.2} {:>12.0}%",
                    uniformity.name(),
                    size.name(),
                    method.name(),
                    dims.representativity,
                    dims.cohesiveness,
                    dims.personalization,
                    median_agreement * 100.0
                );
            }
        }
    }

    println!(
        "\nReading guide: R = representativity (km between day centroids), \
         C = cohesiveness (offset minus intra-day distances), \
         P = personalization (summed profile-item cosine), \
         median-agree = how close the group package's personalization is to the \
         package the median member would have gotten alone."
    );
}
