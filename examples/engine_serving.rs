//! The serving engine end-to-end: two cities, dozens of concurrent groups,
//! cold vs. warm model caches.
//!
//! ```sh
//! cargo run --release --example engine_serving
//! ```
//!
//! The demo registers synthetic Paris and Barcelona catalogs, fans 48 group
//! requests out over the engine's worker threads, then serves the same
//! batch again with warm caches and prints the per-phase latency and cache
//! statistics.

use grouptravel::prelude::*;
use grouptravel_engine::{Engine, EngineConfig, PackageRequest};
use std::time::{Duration, Instant};

const GROUPS: u64 = 48;

fn percentile(sorted: &[Duration], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn batch(engine: &Engine, salt: u64) -> Vec<PackageRequest> {
    (0..GROUPS)
        .map(|i| {
            let city = if i % 2 == 0 { "Paris" } else { "Barcelona" };
            let schema = engine.profile_schema(city).expect("city registered");
            let mut groups = SyntheticGroupGenerator::new(schema, salt.wrapping_mul(1000) + i);
            let size = match i % 3 {
                0 => GroupSize::Small,
                1 => GroupSize::Medium,
                _ => GroupSize::Large,
            };
            let uniformity = if i % 2 == 0 {
                Uniformity::Uniform
            } else {
                Uniformity::NonUniform
            };
            let profile = groups
                .group(size, uniformity)
                .profile(ConsensusMethod::pairwise_disagreement());
            PackageRequest {
                session_id: i,
                city: city.to_string(),
                profile,
                query: GroupQuery::paper_default(),
                config: BuildConfig::default(),
            }
        })
        .collect()
}

fn report(
    label: &str,
    engine: &Engine,
    wall: Duration,
    responses: &[grouptravel_engine::PackageResponse],
) {
    let ok = responses.iter().filter(|r| r.outcome.is_ok()).count();
    let hits = responses.iter().filter(|r| r.clustering_cache_hit).count();
    let mut latencies: Vec<Duration> = responses.iter().map(|r| r.latency).collect();
    latencies.sort();
    println!("── {label}");
    println!(
        "   {ok}/{} packages built in {wall:?} wall-clock",
        responses.len()
    );
    println!(
        "   per-request latency p50 {:?} · p95 {:?} · max {:?}",
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.95),
        percentile(&latencies, 1.00),
    );
    println!(
        "   clustering cache hits: {hits}/{} · throughput {:.1} packages/s",
        responses.len(),
        ok as f64 / wall.as_secs_f64().max(1e-9),
    );
    let stats = engine.stats();
    println!(
        "   cumulative: {} requests, {} FCM trainings, {} LDA trainings",
        stats.requests, stats.fcm_trainings, stats.lda_trainings
    );
}

fn main() {
    let engine = Engine::new(EngineConfig::default());
    println!(
        "spinning up the engine with {} worker threads…",
        engine.config().worker_threads
    );

    let t = Instant::now();
    for (spec, seed) in [(CitySpec::paris(), 41), (CitySpec::barcelona(), 43)] {
        let catalog =
            SyntheticCityGenerator::new(spec, SyntheticCityConfig::small(seed)).generate();
        let city = catalog.city().to_string();
        let pois = catalog.len();
        let fingerprint = engine.register_catalog(catalog).expect("catalog registers");
        println!("registered {city}: {pois} POIs, fingerprint {fingerprint:#018x}");
    }
    println!("registration (incl. LDA training) took {:?}\n", t.elapsed());

    // Cold pass: every (city, config) pair trains its clustering once.
    let requests = batch(&engine, 1);
    let t = Instant::now();
    let cold = engine.serve_batch(requests);
    report(
        "cold batch (empty model cache)",
        &engine,
        t.elapsed(),
        &cold,
    );

    // Warm pass: same cities and configs, new groups — models are reused.
    let requests = batch(&engine, 2);
    let t = Instant::now();
    let warm = engine.serve_batch(requests);
    report(
        "warm batch (cached clusterings)",
        &engine,
        t.elapsed(),
        &warm,
    );

    // Every session kept its state.
    println!(
        "\nsession store holds {} group sessions",
        engine.sessions().len()
    );
    if let Some(state) = engine.sessions().snapshot(0) {
        println!(
            "session 0: {} packages in {}, mean latency {:?}",
            state.packages_served,
            state.city,
            state.mean_latency()
        );
    }
}
