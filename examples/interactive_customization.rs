//! Interactive customization and profile refinement (§3.3 and Figure 3).
//!
//! A non-uniform group gets a personalized Paris package, every member
//! interacts with it (remove / add / replace / generate), the group profile
//! is refined with both the *individual* and the *batch* strategy, and the
//! refined profiles are used to build a package in a different city
//! (Barcelona) — the robustness test of §4.4.4.
//!
//! Run with: `cargo run --example interactive_customization`

use grouptravel::prelude::*;
use grouptravel::{
    refine_batch, refine_individual, CustomizationOp, MemberInteractions, ObjectiveWeights,
};

fn main() {
    // Paris and Barcelona sessions sharing one item vectorizer, so profiles
    // refined in Paris are meaningful in Barcelona.
    let paris_catalog =
        SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::default()).generate();
    let paris =
        GroupTravelSession::new(paris_catalog, SessionConfig::default()).expect("paris session");
    let barcelona_catalog =
        SyntheticCityGenerator::new(CitySpec::barcelona(), SyntheticCityConfig::default())
            .generate();
    let barcelona = GroupTravelSession::with_vectorizer(
        barcelona_catalog,
        paris.vectorizer().clone(),
        paris.metric(),
    )
    .expect("barcelona session");

    // A non-uniform group: members with very different tastes.
    let mut generator = SyntheticGroupGenerator::new(paris.profile_schema(), 11);
    let group = generator.group(GroupSize::Small, Uniformity::NonUniform);
    let consensus = ConsensusMethod::disagreement_variance();
    let profile = group.profile(consensus);
    let query = GroupQuery::paper_default();
    let weights = ObjectiveWeights::default();

    let mut package = paris
        .build_package(&profile, &query, &BuildConfig::default())
        .expect("paris package");
    println!(
        "Initial Paris package: {} composite items, {} distinct POIs",
        package.len(),
        package.distinct_poi_ids().len()
    );

    // Each member performs one operation; the logs are kept per member so
    // both refinement strategies can be compared.
    let mut interactions: Vec<MemberInteractions> = Vec::new();

    // Member 1 removes the first POI of day 1.
    let removed = package.get(0).expect("k >= 1").poi_ids()[0];
    let log = paris
        .apply(
            &mut package,
            &CustomizationOp::Remove {
                ci_index: 0,
                poi: removed,
            },
            &profile,
            &query,
            &weights,
        )
        .expect("remove");
    println!("Member 1 removed {removed}");
    interactions.push(MemberInteractions::with_log(
        group.members()[0].user_id,
        log,
    ));

    // Member 2 asks the system to replace a POI on day 2.
    let to_replace = package.get(1).expect("k >= 2").poi_ids()[0];
    let log = paris
        .apply(
            &mut package,
            &CustomizationOp::Replace {
                ci_index: 1,
                poi: to_replace,
            },
            &profile,
            &query,
            &weights,
        )
        .expect("replace");
    println!(
        "Member 2 replaced {to_replace} with {}",
        log.added
            .first()
            .map_or("nothing".into(), ToString::to_string)
    );
    interactions.push(MemberInteractions::with_log(
        group.members()[1].user_id,
        log,
    ));

    // Member 3 adds the closest attraction to day 3.
    if let Some(candidate) = paris
        .add_candidates(&package, 2, Category::Attraction, None, 1)
        .first()
    {
        let id = candidate.id;
        let name = candidate.name.clone();
        let log = paris
            .apply(
                &mut package,
                &CustomizationOp::Add {
                    ci_index: 2,
                    poi: id,
                },
                &profile,
                &query,
                &weights,
            )
            .expect("add");
        println!("Member 3 added \"{name}\"");
        interactions.push(MemberInteractions::with_log(
            group.members()[2].user_id,
            log,
        ));
    }

    // Member 4 draws a rectangle around the city centre and generates a new
    // composite item inside it.
    let bbox = paris.catalog().bounding_box().expect("non-empty catalog");
    let rect = Rectangle::new(
        bbox.min_lon + bbox.lon_span() * 0.3,
        bbox.max_lat - bbox.lat_span() * 0.3,
        bbox.lon_span() * 0.4,
        bbox.lat_span() * 0.4,
    );
    let log = paris
        .apply(
            &mut package,
            &CustomizationOp::Generate { rectangle: rect },
            &profile,
            &query,
            &weights,
        )
        .expect("generate");
    println!(
        "Member 4 generated a new composite item with {} POIs inside the rectangle",
        log.added.len()
    );
    interactions.push(MemberInteractions::with_log(
        group.members()[3].user_id,
        log,
    ));

    // Refine the group profile with both strategies.
    let batch_profile = refine_batch(&profile, &interactions, paris.catalog(), paris.vectorizer());
    let (_, individual_profile) = refine_individual(
        &group,
        consensus,
        &interactions,
        paris.catalog(),
        paris.vectorizer(),
    );

    // Build Barcelona packages from the original and refined profiles and
    // compare their personalization towards the refined (batch) profile —
    // the profile that now encodes what the group actually asked for.
    println!("\nBarcelona packages (profile robustness across cities):");
    for (name, p) in [
        ("original profile", &profile),
        ("batch-refined", &batch_profile),
        ("individually-refined", &individual_profile),
    ] {
        let package = barcelona
            .build_package(p, &query, &BuildConfig::default())
            .expect("barcelona package");
        let dims = barcelona.measure(&package, &batch_profile);
        println!(
            "  {:<22} personalization towards the refined profile: {:.2}",
            name, dims.personalization
        );
    }
}
