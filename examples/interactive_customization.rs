//! Interactive customization and profile refinement (§3.3 and Figure 3),
//! served through the engine's interactive sessions.
//!
//! Two identical non-uniform groups interact with their personalized Paris
//! package — remove, system-suggested replace, add, generate — then each
//! refines its profile with a different strategy (*batch* vs *individual*).
//! Finally both sessions rebuild **in Barcelona** (registered to share
//! Paris's item vectorizer, so profiles stay meaningful) with no profile in
//! the command: the engine carries each session's refined profile across
//! cities — the robustness test of §4.4.4, multi-step and stateful, on the
//! concurrent serving path.
//!
//! Run with: `cargo run --release --example interactive_customization`

use grouptravel::prelude::*;
use grouptravel::OptimizationDimensions;
use grouptravel_engine::{CommandOutcome, CommandRequest, Engine, EngineConfig, SessionCommand};

fn main() {
    let engine = Engine::new(EngineConfig::default());
    engine
        .register_catalog(
            SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::default())
                .generate(),
        )
        .expect("paris registers");
    // Barcelona reuses Paris's vectorizer: one profile schema, two cities.
    engine
        .register_catalog_sharing_schema(
            SyntheticCityGenerator::new(CitySpec::barcelona(), SyntheticCityConfig::default())
                .generate(),
            "Paris",
        )
        .expect("barcelona registers sharing the Paris schema");

    // A non-uniform group: members with very different tastes.
    let schema = engine.profile_schema("Paris").expect("Paris registered");
    let group =
        SyntheticGroupGenerator::new(schema, 11).group(GroupSize::Small, Uniformity::NonUniform);
    let consensus = ConsensusMethod::disagreement_variance();
    let query = GroupQuery::paper_default();
    let config = BuildConfig::default();

    // Two sessions with the same group and the same interactions, so the
    // two refinement strategies can be compared head to head.
    let strategies = [
        (1u64, RefinementStrategy::Batch),
        (2u64, RefinementStrategy::Individual),
    ];
    for &(session, _) in &strategies {
        let response = engine.serve_command(&CommandRequest::new(
            session,
            SessionCommand::build_for_group("Paris", group.clone(), consensus, query, config),
        ));
        let package = response.package().expect("paris package");
        if session == 1 {
            println!(
                "Initial Paris package: {} composite items, {} distinct POIs (cold build, {:?})",
                package.len(),
                package.distinct_poi_ids().len(),
                response.latency
            );
        } else {
            println!(
                "Session {session} built the same package warm (cache hit: {}, {:?})",
                response.clustering_cache_hit, response.latency
            );
        }
    }

    // Members interact; every command goes to both sessions.
    let package = engine.sessions().snapshot(1).unwrap().last_package.unwrap();

    // Member 1 removes the first POI of day 1.
    let removed = package.get(0).expect("k >= 1").poi_ids()[0];
    for &(session, _) in &strategies {
        engine.serve_command(&CommandRequest::from_member(
            session,
            group.members()[0].user_id,
            SessionCommand::Customize(CustomizationOp::Remove {
                ci_index: 0,
                poi: removed,
            }),
        ));
    }
    println!("Member 1 removed {removed}");

    // Member 2 asks the system for a replacement on day 2, then applies it.
    let to_replace = package.get(1).expect("k >= 2").poi_ids()[0];
    let suggestion = match engine
        .serve_command(&CommandRequest::new(
            1,
            SessionCommand::SuggestReplacement {
                ci_index: 1,
                poi: to_replace,
            },
        ))
        .outcome
    {
        Ok(CommandOutcome::Suggestion(s)) => s,
        other => panic!("expected a suggestion, got {other:?}"),
    };
    if suggestion.is_some() {
        for &(session, _) in &strategies {
            engine.serve_command(&CommandRequest::from_member(
                session,
                group.members()[1].user_id,
                SessionCommand::Customize(CustomizationOp::Replace {
                    ci_index: 1,
                    poi: to_replace,
                }),
            ));
        }
    }
    println!(
        "Member 2 replaced {to_replace} with {}",
        suggestion.map_or("nothing".into(), |p| format!("\"{}\"", p.name))
    );

    // Member 3 adds the first attraction of the catalog to day 3.
    let added = engine
        .registry()
        .get("Paris")
        .unwrap()
        .catalog()
        .by_category(Category::Attraction)[0]
        .id;
    for &(session, _) in &strategies {
        engine.serve_command(&CommandRequest::from_member(
            session,
            group.members()[2].user_id,
            SessionCommand::Customize(CustomizationOp::Add {
                ci_index: 2,
                poi: added,
            }),
        ));
    }
    println!("Member 3 added {added}");

    // Member 4 draws a rectangle around the city centre and generates a new
    // composite item inside it.
    let bbox = engine
        .registry()
        .get("Paris")
        .unwrap()
        .catalog()
        .bounding_box()
        .expect("non-empty catalog");
    let rect = Rectangle::new(
        bbox.min_lon + bbox.lon_span() * 0.3,
        bbox.max_lat - bbox.lat_span() * 0.3,
        bbox.lon_span() * 0.4,
        bbox.lat_span() * 0.4,
    );
    for &(session, _) in &strategies {
        let response = engine.serve_command(&CommandRequest::from_member(
            session,
            group.members()[3].user_id,
            SessionCommand::Customize(CustomizationOp::Generate { rectangle: rect }),
        ));
        if session == 1 {
            let generated = response.package().expect("generate succeeds");
            println!(
                "Member 4 generated a new composite item ({} composite items now)",
                generated.len()
            );
        }
    }

    // Each session refines with its own strategy, consuming the pooled
    // interactions, then rebuilds in Barcelona with *no* profile in the
    // command — the engine's session state carries the refined profile.
    println!("\nBarcelona packages (profile robustness across cities):");
    let barcelona = engine.registry().get("Barcelona").unwrap();
    for &(session, strategy) in &strategies {
        let refined = engine
            .serve_command(&CommandRequest::new(
                session,
                SessionCommand::Refine(strategy),
            ))
            .refined_profile()
            .expect("refinement succeeds")
            .clone();
        let response = engine.serve_command(&CommandRequest::new(
            session,
            SessionCommand::rebuild("Barcelona", query, config),
        ));
        let package = response.package().expect("barcelona package");
        let dims = OptimizationDimensions::measure(
            package,
            barcelona.catalog(),
            barcelona.vectorizer(),
            &refined,
            engine.config().metric,
        );
        println!(
            "  {:<11} personalization towards its refined profile: {:.2} (warm: {})",
            strategy.name(),
            dims.personalization,
            response.clustering_cache_hit
        );
    }

    // End both sessions and show what the engine accounted.
    for &(session, _) in &strategies {
        if let Ok(CommandOutcome::Ended(state)) = engine
            .serve_command(&CommandRequest::new(session, SessionCommand::End))
            .outcome
        {
            println!(
                "Session {session}: {} steps, {} customizations, {} refinement(s), mean step latency {:?}",
                state.steps,
                state.customizations,
                state.refinements,
                state.mean_latency()
            );
        }
    }
    let stats = engine.stats();
    println!(
        "Engine totals: {} commands, {} FCM trainings, {} LDA trainings",
        stats.commands.total(),
        stats.fcm_trainings,
        stats.lda_trainings
    );
}
