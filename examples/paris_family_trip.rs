//! The paper's running example: a family plans a five-day Paris trip under a
//! daily budget (Figure 1 and the worked example of §2.3).
//!
//! A couple with three kids rate museums very differently (0.8, 1.0, 0.6,
//! 0.2); the example shows how the four consensus functions turn those
//! ratings into different group profiles and how the resulting packages
//! differ, including the budget-constrained query
//! ⟨1 acco, 1 trans, 1 rest, 3 attr, $100⟩.
//!
//! Run with: `cargo run --example paris_family_trip`

use grouptravel::prelude::*;

/// Builds the five family members of the worked example. Each member rates
/// the latent attraction topics so that the "museums" topic receives the
/// paper's ratings, and fills the rest of the profile with personal taste.
fn family(schema: ProfileSchema) -> Group {
    // Ratings for the museum topic (index 0 by convention here), father,
    // mother, teenager, kid — exactly the §2.3 example, plus a grandparent to
    // make five travelers.
    let museum_ratings = [0.8, 1.0, 0.6, 0.2, 0.7];
    let members = museum_ratings
        .iter()
        .enumerate()
        .map(|(idx, &museum)| {
            let mut profile = UserProfile::empty(idx as u64 + 1, schema);
            // Attractions: museum topic gets the example rating, the other
            // topics get a personal spread.
            let attr_dim = schema.dim(Category::Attraction);
            let mut attr = vec![0.2; attr_dim];
            if attr_dim > 0 {
                attr[0] = museum;
                if attr_dim > 1 {
                    attr[1 + idx % (attr_dim - 1)] = 0.6;
                }
            }
            profile.set_scores(Category::Attraction, attr);
            // Restaurants: parents like gastronomy, kids like street food.
            let rest_dim = schema.dim(Category::Restaurant);
            let mut rest = vec![0.2; rest_dim];
            if rest_dim > 2 {
                if idx < 2 {
                    rest[2] = 0.9;
                } else {
                    rest[3 % rest_dim] = 0.9;
                }
            }
            profile.set_scores(Category::Restaurant, rest);
            // Accommodation: everyone wants a hotel; transportation varies.
            profile.set_ratings(Category::Accommodation, &[5.0, 1.0, 0.0, 2.0, 0.0, 1.0]);
            let trans = if idx % 2 == 0 {
                [1.0, 4.0, 4.0, 2.0, 0.0, 1.0]
            } else {
                [0.0, 2.0, 3.0, 1.0, 0.0, 5.0]
            };
            profile.set_ratings(Category::Transportation, &trans);
            profile
        })
        .collect();
    Group::new(1, members)
}

fn main() {
    let catalog =
        SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::default()).generate();
    let session = GroupTravelSession::new(catalog, SessionConfig::default())
        .expect("the synthetic catalog is never empty");

    let group = family(session.profile_schema());
    println!(
        "A family of {} with uniformity {:.2} plans five days in Paris.",
        group.size(),
        group.uniformity()
    );

    // The worked example of §2.3: how the consensus functions weigh the
    // museum topic.
    println!("\nGroup score for the 'museum' attraction topic per consensus function:");
    for method in ConsensusMethod::paper_variants() {
        let profile = group.profile(method);
        println!(
            "  {:<24} -> {:.2}",
            method.name(),
            profile.score(Category::Attraction, 0)
        );
    }

    // Figure 1's query: one accommodation, one transportation, one
    // restaurant, three attractions, $100 per day.
    let query = GroupQuery::figure1();
    println!("\nBuilding the package for query {query} with each consensus:");
    for method in ConsensusMethod::paper_variants() {
        let profile = group.profile(method);
        let package = session
            .build_package(&profile, &query, &BuildConfig::default())
            .expect("package build");
        let dims = session.measure(&package, &profile);
        let valid = package.is_valid(session.catalog(), &query);
        println!(
            "  {:<24} valid: {:<5} cost: {:>6.2}  R {:>6.2}  C {:>6.2}  P {:>5.2}",
            method.name(),
            valid,
            package.total_cost(session.catalog()),
            dims.representativity,
            dims.cohesiveness,
            dims.personalization
        );
    }

    // Show the day-by-day plan for the disagreement-based package (the
    // method the paper recommends for diverse groups such as a family).
    let profile = group.profile(ConsensusMethod::pairwise_disagreement());
    let package = session
        .build_package(&profile, &query, &BuildConfig::default())
        .expect("package build");
    println!("\nFive-day plan (pair-wise disagreement consensus):");
    for (day, ci) in package.composite_items().iter().enumerate() {
        println!("  DAY {}", day + 1);
        for poi in ci.resolve(session.catalog()) {
            println!(
                "    [{}] {:<40} {:>5.2}$  ({})",
                poi.category, poi.name, poi.cost, poi.poi_type
            );
        }
    }
}
