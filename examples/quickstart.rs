//! Quickstart: the full GroupTravel flow in one file (Figure 2 of the paper).
//!
//! 1. Generate a synthetic Paris POI catalog (TourPedia/Foursquare substitute).
//! 2. Create a session (trains the LDA topic models, wires item vectors).
//! 3. Build a group of travelers and aggregate their profiles with a
//!    consensus function.
//! 4. Build a personalized 5-composite-item travel package.
//! 5. Measure representativity, cohesiveness and personalization.
//! 6. Customize the package and refine the group profile from the
//!    interactions.
//!
//! Run with: `cargo run --example quickstart`

use grouptravel::prelude::*;
use grouptravel::{refine_batch, CustomizationOp, MemberInteractions, ObjectiveWeights};

fn main() {
    // 1. A synthetic Paris catalog.
    let catalog =
        SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::default()).generate();
    println!(
        "Generated {} POIs in {} ({} attractions, {} restaurants)",
        catalog.len(),
        catalog.city(),
        catalog.count_category(Category::Attraction),
        catalog.count_category(Category::Restaurant),
    );

    // 2. The session trains LDA over restaurant/attraction tags.
    let session = GroupTravelSession::new(catalog, SessionConfig::default())
        .expect("the synthetic catalog is never empty");
    println!("\nLatent attraction types (LDA topics):");
    for label in session.vectorizer().topic_labels(Category::Attraction) {
        println!("  - {label}");
    }

    // 3. A travel group and its consensus profile.
    let mut generator = SyntheticGroupGenerator::new(session.profile_schema(), 7);
    let group = generator.group(GroupSize::Small, Uniformity::Uniform);
    let consensus = ConsensusMethod::pairwise_disagreement();
    let profile = group.profile(consensus);
    println!(
        "\nGroup of {} travelers (uniformity {:.2}), consensus: {}",
        group.size(),
        group.uniformity(),
        consensus
    );

    // 4. Build the package for the paper's default query.
    let query = GroupQuery::paper_default();
    let package = session
        .build_package(&profile, &query, &BuildConfig::default())
        .expect("package build");
    println!("\nTravel package for query {query}:");
    for (day, ci) in package.composite_items().iter().enumerate() {
        println!(
            "  Day {} — {} POIs, cost {:.2}",
            day + 1,
            ci.len(),
            ci.total_cost(session.catalog())
        );
        for poi in ci.resolve(session.catalog()) {
            println!("      [{}] {}", poi.category, poi.name);
        }
    }

    // 5. Measure the optimization dimensions (Eq. 2-4).
    let dims = session.measure(&package, &profile);
    println!(
        "\nRepresentativity {:.2} km · cohesiveness {:.2} · personalization {:.2}",
        dims.representativity, dims.cohesiveness, dims.personalization
    );

    // 6. Customize: drop the first POI of day 1, then refine the profile.
    let mut customized = package.clone();
    let victim = customized.get(0).expect("k >= 1").poi_ids()[0];
    let log = session
        .apply(
            &mut customized,
            &CustomizationOp::Remove {
                ci_index: 0,
                poi: victim,
            },
            &profile,
            &query,
            &ObjectiveWeights::default(),
        )
        .expect("remove operation");
    let interactions = vec![MemberInteractions::with_log(
        group.members()[0].user_id,
        log,
    )];
    let refined = refine_batch(
        &profile,
        &interactions,
        session.catalog(),
        session.vectorizer(),
    );
    let changed = Category::ALL
        .iter()
        .any(|&c| refined.vector(c) != profile.vector(c));
    println!("\nAfter removing {victim}, the batch-refined group profile changed: {changed}");
}
