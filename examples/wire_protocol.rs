//! The versioned wire protocol, end to end: boot the HTTP/JSON front-end
//! on an ephemeral port, register a city over the wire, run a group's
//! interactive session through `POST /v1/engine`, snapshot it, resume it,
//! and read the serving counters back — everything a network client can
//! do, over real sockets.
//!
//! Run with: `cargo run --release --example wire_protocol`

use grouptravel::prelude::*;
use grouptravel_engine::{
    CommandRequest, Engine, EngineConfig, EngineRequest, EngineResponse, SessionCommand,
};
use grouptravel_server::client::EngineClient;
use grouptravel_server::{RunningServer, ServerConfig};
use std::sync::Arc;

fn expect_command(response: EngineResponse) -> grouptravel_engine::CommandResponse {
    match response {
        EngineResponse::Command { response } => response,
        other => panic!("expected a command response, got {}", other.kind()),
    }
}

fn main() {
    // 1. Boot: an empty engine behind the HTTP front-end.
    let server = RunningServer::start(
        Arc::new(Engine::new(EngineConfig::fast())),
        ServerConfig::default(),
    )
    .expect("bind an ephemeral port");
    let client = EngineClient::new(server.addr());
    println!("server listening on http://{}", server.addr());

    let (status, body) = client.http("GET", "/healthz", None).unwrap();
    println!("GET /healthz            -> {status} {body}");

    // 2. Register a synthetic Paris catalog over the wire. The catalog
    //    travels as JSON; the engine rebuilds its indexes, trains the LDA
    //    vectorizer, and primes the spatial grids.
    let catalog =
        SyntheticCityGenerator::new(CitySpec::paris(), SyntheticCityConfig::small(7)).generate();
    match client
        .request(EngineRequest::RegisterCatalog {
            catalog: Box::new(catalog),
        })
        .unwrap()
    {
        EngineResponse::Registered { outcome } => {
            let info = outcome.expect("registration succeeds");
            println!(
                "RegisterCatalog         -> city={} fingerprint={:#018x} lda_trained={}",
                info.city, info.fingerprint, info.lda_trained
            );
        }
        other => panic!("expected Registered, got {}", other.kind()),
    }

    // 3. A group's interactive session, every step one POST.
    let schema = server.engine().profile_schema("Paris").unwrap();
    let group =
        SyntheticGroupGenerator::new(schema, 3).group(GroupSize::Small, Uniformity::NonUniform);
    let built = expect_command(
        client
            .request(EngineRequest::Command {
                request: CommandRequest::new(
                    1,
                    SessionCommand::build_for_group(
                        "Paris",
                        group.clone(),
                        ConsensusMethod::pairwise_disagreement(),
                        GroupQuery::paper_default(),
                        BuildConfig::default(),
                    ),
                ),
            })
            .unwrap(),
    );
    let package = built.package().expect("build succeeds").clone();
    println!(
        "Command(Build)          -> step={} cis={} cold={}",
        built.step,
        package.len(),
        !built.clustering_cache_hit
    );

    let victim = package.get(0).unwrap().poi_ids()[0];
    let customized = expect_command(
        client
            .request(EngineRequest::Command {
                request: CommandRequest::from_member(
                    1,
                    group.members()[0].user_id,
                    SessionCommand::Customize(CustomizationOp::Remove {
                        ci_index: 0,
                        poi: victim,
                    }),
                ),
            })
            .unwrap(),
    );
    println!(
        "Command(Customize)      -> step={} removed {victim}",
        customized.step
    );

    let refined = expect_command(
        client
            .request(EngineRequest::Command {
                request: CommandRequest::new(
                    1,
                    SessionCommand::Refine(RefinementStrategy::Individual),
                ),
            })
            .unwrap(),
    );
    println!(
        "Command(Refine)         -> step={} refined={}",
        refined.step,
        refined.refined_profile().is_some()
    );

    // 4. Snapshot the session, end it, resume it — the persistence path.
    let snapshot = match client
        .request(EngineRequest::ExportSession { session_id: 1 })
        .unwrap()
    {
        EngineResponse::Session { outcome } => outcome.expect("session exists"),
        other => panic!("expected Session, got {}", other.kind()),
    };
    println!(
        "ExportSession           -> v={} steps={} packages={}",
        snapshot.v, snapshot.state.steps, snapshot.state.packages_served
    );
    expect_command(
        client
            .request(EngineRequest::Command {
                request: CommandRequest::new(1, SessionCommand::End),
            })
            .unwrap(),
    );
    match client
        .request(EngineRequest::ImportSession { snapshot })
        .unwrap()
    {
        EngineResponse::Imported { outcome } => {
            let info = outcome.expect("import succeeds");
            println!(
                "ImportSession           -> session {} resumed in {} (replaced={})",
                info.session_id, info.city, info.replaced
            );
        }
        other => panic!("expected Imported, got {}", other.kind()),
    }
    let resumed = expect_command(
        client
            .request(EngineRequest::Command {
                request: CommandRequest::new(
                    1,
                    SessionCommand::rebuild(
                        "Paris",
                        GroupQuery::paper_default(),
                        BuildConfig::default(),
                    ),
                ),
            })
            .unwrap(),
    );
    println!(
        "Command(Rebuild)        -> step={} warm={}",
        resumed.step, resumed.clustering_cache_hit
    );
    assert!(resumed.clustering_cache_hit, "resumed rebuild must be warm");

    // 5. The counters, over the convenience route.
    let (status, body) = client.http("GET", "/stats", None).unwrap();
    println!("GET /stats              -> {status} {body}");

    server.stop();
    println!("server stopped cleanly");
}
