//! Workspace umbrella crate.
//!
//! Exists so the repository-root `examples/` and `tests/` directories are
//! cargo targets; the library itself only re-exports the crates the examples
//! exercise. Start from [`grouptravel`] (the core pipeline) or
//! [`grouptravel_engine`] (the concurrent serving layer).

pub use grouptravel;
pub use grouptravel_dataset;
pub use grouptravel_engine;
pub use grouptravel_experiments;
pub use grouptravel_geo;
pub use grouptravel_profile;
pub use grouptravel_topics;
