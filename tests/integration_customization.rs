//! Integration tests for the customization study (Tables 6–7) and the
//! profile-refinement machinery across cities — through both the one-shot
//! `GroupTravelSession` and the serving engine's interactive sessions.

use grouptravel::prelude::*;
use grouptravel::{refine_batch, refine_individual, MemberInteractions};
use grouptravel_engine::{CommandRequest, Engine, EngineConfig, EngineError, SessionCommand};
use grouptravel_experiments::common::UserStudyWorld;
use grouptravel_experiments::{table6, table7, ExperimentScale};

fn scale() -> ExperimentScale {
    ExperimentScale::smoke()
}

#[test]
fn customization_study_produces_complete_tables_6_and_7() {
    let world = UserStudyWorld::build(scale());
    let study = table6::run_study(&world);

    // Both group classes are present with the paper's member counts.
    assert_eq!(study.groups.len(), 2);
    assert_eq!(study.groups[0].group.size(), 11);
    assert_eq!(study.groups[1].group.size(), 7);

    // Every member interacted and the pooled feedback is non-trivial.
    for group_study in &study.groups {
        let total_interactions: usize = group_study.interactions.iter().map(|i| i.log.len()).sum();
        assert!(
            total_interactions >= group_study.group.size(),
            "expected at least one interaction per member"
        );
        // Barcelona packages exist for all three strategies and are valid.
        let query = GroupQuery::paper_default();
        for (strategy, package) in &group_study.barcelona_packages {
            assert_eq!(package.len(), 5, "{strategy} package has the wrong k");
            assert!(
                package.is_valid(world.barcelona.catalog(), &query),
                "{strategy} package should be valid"
            );
        }
    }

    // Table 6: every (uniformity, strategy) cell exists with a sane rating.
    let table6 = table6::from_study(&world, &study);
    for uniformity in Uniformity::ALL {
        for strategy in table6::STRATEGIES {
            let cell = table6
                .cell(uniformity, strategy)
                .unwrap_or_else(|| panic!("missing cell {uniformity:?}/{strategy}"));
            assert!((1.0..=5.0).contains(&cell.rating));
        }
    }

    // Table 7: all three pairs for both groups, and the refined (batch or
    // individual) packages collectively do not lose badly to the
    // non-personalized baseline — the paper's core customization claim is
    // that refinement helps, with batch the strongest.
    let table7 = table7::from_study(&world, &study);
    assert_eq!(table7.cells.len(), 6);
    let mut refined_vs_np = Vec::new();
    for uniformity in Uniformity::ALL {
        for first in ["batch", "individual"] {
            if let Some(rate) = table7.win_rate(uniformity, first, "non-personalized") {
                refined_vs_np.push(rate);
            }
        }
    }
    assert!(!refined_vs_np.is_empty());
    let avg = refined_vs_np.iter().sum::<f64>() / refined_vs_np.len() as f64;
    assert!(
        avg >= 0.4,
        "refined packages should hold their own against the non-personalized baseline (avg win rate {avg})"
    );
}

#[test]
fn batch_refinement_moves_the_profile_towards_what_the_group_added() {
    let world = UserStudyWorld::build(scale());
    let group = world
        .platform
        .form_group_sized(&world.population, 7, Uniformity::NonUniform, 42)
        .expect("group");
    let profile = group.profile(ConsensusMethod::pairwise_disagreement());

    // The group "adds" every POI of one attraction type and "removes"
    // nothing; the refined profile must gain affinity for those POIs.
    let added: Vec<_> = world
        .paris
        .catalog()
        .by_category(Category::Attraction)
        .into_iter()
        .take(5)
        .map(|p| p.id)
        .collect();
    let mut member = MemberInteractions::new(group.members()[0].user_id);
    for id in &added {
        member.log.record_add(*id);
    }
    let refined = refine_batch(
        &profile,
        &[member.clone()],
        world.paris.catalog(),
        world.paris.vectorizer(),
    );

    let affinity = |p: &GroupProfile| -> f64 {
        added
            .iter()
            .map(|id| {
                let poi = world.paris.catalog().get(*id).unwrap();
                p.item_affinity(poi.category, &world.paris.vectorizer().item_vector(poi))
            })
            .sum()
    };
    assert!(
        affinity(&refined) >= affinity(&profile),
        "refinement should not reduce affinity towards the added POIs"
    );

    // The individual strategy refines only the interacting member but still
    // produces a valid group profile with the same schema.
    let (refined_group, individual_profile) = refine_individual(
        &group,
        ConsensusMethod::pairwise_disagreement(),
        &[member],
        world.paris.catalog(),
        world.paris.vectorizer(),
    );
    assert_eq!(refined_group.size(), group.size());
    assert_eq!(individual_profile.schema(), profile.schema());
}

#[test]
fn refined_profiles_transfer_to_barcelona_and_change_the_package() {
    let world = UserStudyWorld::build(scale());
    let group = world
        .platform
        .form_group_sized(&world.population, 7, Uniformity::NonUniform, 7)
        .expect("group");
    let profile = group.profile(ConsensusMethod::pairwise_disagreement());
    let query = GroupQuery::paper_default();
    let config = BuildConfig::default();

    // A strong, one-sided refinement (every museum-ish POI added) should be
    // able to change the Barcelona package relative to the original profile.
    let added: Vec<_> = world
        .paris
        .catalog()
        .by_category(Category::Attraction)
        .into_iter()
        .take(10)
        .map(|p| p.id)
        .collect();
    let mut member = MemberInteractions::new(group.members()[0].user_id);
    for id in &added {
        member.log.record_add(*id);
    }
    let refined = refine_batch(
        &profile,
        &[member],
        world.paris.catalog(),
        world.paris.vectorizer(),
    );

    let original_package = world
        .barcelona
        .build_package(&profile, &query, &config)
        .unwrap();
    let refined_package = world
        .barcelona
        .build_package(&refined, &query, &config)
        .unwrap();
    let non_personalized_package = world
        .barcelona
        .build_non_personalized(&refined, &query, &config)
        .unwrap();
    assert!(original_package.is_valid(world.barcelona.catalog(), &query));
    assert!(refined_package.is_valid(world.barcelona.catalog(), &query));
    // Personalization measured against the refined profile: the package built
    // *for* the refined profile must clearly beat the purely geographic
    // baseline, i.e. the refinement signal survives the change of city.
    let dims_refined = world.barcelona.measure(&refined_package, &refined);
    let dims_baseline = world.barcelona.measure(&non_personalized_package, &refined);
    assert!(dims_refined.personalization > 0.0);
    assert!(
        dims_refined.personalization >= dims_baseline.personalization - 1e-9,
        "the refined-profile package ({}) should serve the refined profile at least as well as the non-personalized baseline ({})",
        dims_refined.personalization,
        dims_baseline.personalization
    );
}

fn small_catalog(city: CitySpec, seed: u64) -> PoiCatalog {
    SyntheticCityGenerator::new(city, SyntheticCityConfig::small(seed)).generate()
}

/// The §4.4.4 flow — customize in Paris, refine, rebuild in Barcelona with
/// the refined profile — served entirely through the engine's interactive
/// sessions, checked bit-identical against the one-shot replay that the
/// rest of this file exercises.
#[test]
fn engine_interactive_path_matches_the_one_shot_customization_flow() {
    let engine = Engine::new(EngineConfig::exhaustive());
    engine
        .register_catalog(small_catalog(CitySpec::paris(), 41))
        .unwrap();
    // Barcelona shares Paris's vectorizer, so refined profiles transfer.
    engine
        .register_catalog_sharing_schema(small_catalog(CitySpec::barcelona(), 43), "Paris")
        .unwrap();

    let schema = engine.profile_schema("Paris").unwrap();
    let group =
        SyntheticGroupGenerator::new(schema, 7).group(GroupSize::Small, Uniformity::NonUniform);
    let consensus = ConsensusMethod::pairwise_disagreement();
    let query = GroupQuery::paper_default();
    let config = BuildConfig::default();

    // One-shot replica: Paris session + Barcelona session sharing the
    // vectorizer, exactly as `examples/interactive_customization.rs` did
    // before the engine existed.
    let paris = GroupTravelSession::new(
        small_catalog(CitySpec::paris(), 41),
        SessionConfig {
            lda: engine.config().lda,
            metric: engine.config().metric,
        },
    )
    .unwrap();
    let barcelona = GroupTravelSession::with_vectorizer(
        small_catalog(CitySpec::barcelona(), 43),
        paris.vectorizer().clone(),
        paris.metric(),
    )
    .unwrap();

    let profile = group.profile(consensus);
    let mut package = paris.build_package(&profile, &query, &config).unwrap();
    let built = engine.serve_command(&CommandRequest::new(
        5,
        SessionCommand::build_for_group("Paris", group.clone(), consensus, query, config),
    ));
    assert_eq!(built.package().unwrap(), &package);

    // A member removes a POI, another replaces one.
    let mut interactions: Vec<MemberInteractions> = Vec::new();
    let ops = [
        (
            group.members()[0].user_id,
            CustomizationOp::Remove {
                ci_index: 0,
                poi: package.get(0).unwrap().poi_ids()[0],
            },
        ),
        (
            group.members()[1].user_id,
            CustomizationOp::Replace {
                ci_index: 2,
                poi: package.get(2).unwrap().poi_ids()[0],
            },
        ),
    ];
    for (member, op) in ops {
        let response = engine.serve_command(&CommandRequest::from_member(
            5,
            member,
            SessionCommand::Customize(op),
        ));
        let log = paris
            .apply(&mut package, &op, &profile, &query, &config.weights)
            .unwrap();
        grouptravel::record_member_log(&mut interactions, member, &log);
        assert_eq!(response.package().unwrap(), &package);
    }

    // Batch refinement, then rebuild *in Barcelona* with no explicit
    // profile: the engine must carry the refined profile across cities.
    let refined_response = engine.serve_command(&CommandRequest::new(
        5,
        SessionCommand::Refine(RefinementStrategy::Batch),
    ));
    let refined = refine_batch(&profile, &interactions, paris.catalog(), paris.vectorizer());
    assert_eq!(refined_response.refined_profile().unwrap(), &refined);

    let transferred = engine.serve_command(&CommandRequest::new(
        5,
        SessionCommand::rebuild("Barcelona", query, config),
    ));
    let expected = barcelona.build_package(&refined, &query, &config).unwrap();
    assert_eq!(
        transferred.package().unwrap(),
        &expected,
        "the refined profile must transfer to Barcelona bit-identically"
    );
    let state = engine.sessions().snapshot(5).unwrap();
    assert_eq!(state.city, "Barcelona");
    assert_eq!(state.refinements, 1);
}

/// Customizing a session the store evicted must surface a typed error —
/// never a panic, and never a silent rebuild from scratch.
#[test]
fn customizing_after_session_store_eviction_is_a_typed_error() {
    let engine = Engine::new(EngineConfig {
        max_sessions: 2,
        ..EngineConfig::fast()
    });
    engine
        .register_catalog(small_catalog(CitySpec::paris(), 41))
        .unwrap();
    let schema = engine.profile_schema("Paris").unwrap();
    let build_for = |session: u64| {
        let profile = SyntheticGroupGenerator::new(schema, session)
            .group(GroupSize::Small, Uniformity::Uniform)
            .profile(ConsensusMethod::pairwise_disagreement());
        CommandRequest::new(
            session,
            SessionCommand::build(
                "Paris",
                profile,
                GroupQuery::paper_default(),
                BuildConfig::default(),
            ),
        )
    };

    // Fill the store, then admit a third session: the stalest (1) is
    // evicted to stay within capacity.
    for session in [1, 2, 3] {
        assert!(engine.serve_command(&build_for(session)).outcome.is_ok());
    }
    assert!(engine.sessions().len() <= 2);
    assert!(engine.sessions().snapshot(1).is_none(), "session 1 evicted");

    let builds_before = engine.stats().commands.builds;
    let response = engine.serve_command(&CommandRequest::new(
        1,
        SessionCommand::Customize(CustomizationOp::DeleteCi { ci_index: 0 }),
    ));
    assert_eq!(
        response.outcome.unwrap_err(),
        EngineError::UnknownSession(1),
        "evicted sessions fail typed"
    );
    assert_eq!(response.step, 0);
    assert_eq!(
        engine.stats().commands.builds,
        builds_before,
        "no silent rebuild of evicted state"
    );
    assert!(
        engine.sessions().snapshot(1).is_none(),
        "the failed customize must not resurrect the session"
    );

    // The client recovers by building again with an explicit profile.
    let rebuilt = engine.serve_command(&build_for(1));
    assert!(rebuilt.outcome.is_ok());
    assert_eq!(rebuilt.step, 1, "a recovered session starts a fresh life");
}
