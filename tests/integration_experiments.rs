//! Integration tests asserting the qualitative findings of the paper's
//! evaluation (Tables 2–5 and the §4.3 analysis) on a scaled-down but
//! otherwise identical experiment pipeline.
//!
//! We assert *shape*, not absolute numbers: who wins, in which direction the
//! trends point, and which baselines lose — the claims the paper's
//! conclusions rest on.

use grouptravel::prelude::*;
use grouptravel_experiments::common::{SyntheticWorld, UserStudyWorld};
use grouptravel_experiments::{analysis, table2, table3, table4, table5, ExperimentScale};

/// A scale a bit bigger than `smoke` so that averages are stable enough for
/// directional assertions while keeping the test fast.
fn assertion_scale() -> ExperimentScale {
    ExperimentScale {
        groups_per_cell: 6,
        study_groups_per_cell: 2,
        ..ExperimentScale::smoke()
    }
}

#[test]
fn synthetic_experiment_reproduces_the_papers_main_orderings() {
    let world = SyntheticWorld::build(assertion_scale());
    let records = table2::collect_records(&world);
    let table = table2::from_records(&records);

    // 1. Least misery is the weakest personalization strategy overall
    //    ("optimizing towards one single group member is not an effective
    //    personalization strategy").
    let lm = table.method_average("least misery");
    for method in [
        "average preference",
        "pair-wise disagreement",
        "disagreement variance",
    ] {
        let other = table.method_average(method);
        assert!(
            other.personalization >= lm.personalization,
            "{method} should personalize at least as well as least misery ({} vs {})",
            other.personalization,
            lm.personalization
        );
    }

    // 2. For non-uniform groups, least misery's personalization collapses
    //    (the paper reports 7%, 7%, 0%).
    for size in GroupSize::ALL {
        let cell = table
            .cell(Uniformity::NonUniform, size, "least misery")
            .expect("cell exists");
        assert!(
            cell.personalization < 0.3,
            "least misery personalization for non-uniform {} groups should collapse, got {}",
            size.name(),
            cell.personalization
        );
    }

    // 3. Representativity is driven by the clustering, not the consensus:
    //    within a cell all methods agree (the paper: "average preference and
    //    disagreement-based methods result in similar representativity").
    for uniformity in Uniformity::ALL {
        for size in GroupSize::ALL {
            let values: Vec<f64> = ConsensusMethod::paper_variants()
                .iter()
                .map(|m| {
                    table
                        .cell(uniformity, size, m.name())
                        .expect("cell exists")
                        .representativity
                })
                .collect();
            let spread = values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
                - values.iter().copied().fold(f64::INFINITY, f64::min);
            assert!(
                spread < 0.2,
                "representativity should barely depend on the consensus (spread {spread})"
            );
        }
    }

    // 4. For uniform groups cohesiveness grows with group size while
    //    personalization does not grow (the paper's PCC signs).
    for method in ConsensusMethod::paper_variants() {
        let c_small = table
            .cell(Uniformity::Uniform, GroupSize::Small, method.name())
            .unwrap()
            .cohesiveness;
        let c_large = table
            .cell(Uniformity::Uniform, GroupSize::Large, method.name())
            .unwrap()
            .cohesiveness;
        assert!(
            c_large >= c_small - 0.05,
            "{}: cohesiveness should not shrink as uniform groups grow ({c_small} -> {c_large})",
            method.name()
        );
        let p_small = table
            .cell(Uniformity::Uniform, GroupSize::Small, method.name())
            .unwrap()
            .personalization;
        let p_large = table
            .cell(Uniformity::Uniform, GroupSize::Large, method.name())
            .unwrap()
            .personalization;
        assert!(
            p_large <= p_small + 0.05,
            "{}: personalization should not grow as uniform groups grow ({p_small} -> {p_large})",
            method.name()
        );
    }

    // 5. Non-uniform small/medium groups are at least as cohesive as their
    //    uniform counterparts under average preference (diluted
    //    personalization favours geography).
    for size in [GroupSize::Small, GroupSize::Medium] {
        let uniform = table
            .cell(Uniformity::Uniform, size, "average preference")
            .unwrap()
            .cohesiveness;
        let non_uniform = table
            .cell(Uniformity::NonUniform, size, "average preference")
            .unwrap()
            .cohesiveness;
        assert!(
            non_uniform >= uniform - 0.1,
            "non-uniform {} groups should be at least as cohesive ({} vs {})",
            size.name(),
            non_uniform,
            uniform
        );
    }

    // Table 3: for non-uniform groups least misery satisfies the median user
    // at least as well (on personalization agreement) as the
    // disagreement-based methods — the paper's "least misery is more
    // successful at satisfying the median user in groups with diverse
    // tastes".
    let table3 = table3::from_records(&records);
    let lm_median = table3.average_agreement(Uniformity::NonUniform, "least misery");
    let ad_median = table3.average_agreement(Uniformity::NonUniform, "pair-wise disagreement");
    assert!(
        lm_median >= ad_median - 0.15,
        "least misery should not be far worse for the median user of diverse groups ({lm_median} vs {ad_median})"
    );

    // The §4.3 analysis runs and the cohesiveness-vs-size correlation for
    // uniform groups is non-negative for every method (paper: +0.73..+0.99).
    let analysis = analysis::from_records(&records);
    for method in ConsensusMethod::paper_variants() {
        if let Some(pcc) = analysis.pcc(method.name(), "cohesiveness") {
            assert!(
                pcc > -0.2,
                "{}: cohesiveness should not anti-correlate with size (PCC {pcc})",
                method.name()
            );
        }
    }
}

#[test]
fn user_study_reproduces_the_personalization_advantage() {
    let world = UserStudyWorld::build(assertion_scale());

    // Table 4: personalized packages are liked better than the random and
    // non-personalized baselines, on average.
    let table4 = table4::run(&world);
    let random = table4.kind_average("random");
    let non_personalized = table4.kind_average("non-personalized");
    let best_personalized = ConsensusMethod::paper_variants()
        .iter()
        .map(|m| table4.kind_average(m.name()))
        .fold(f64::NEG_INFINITY, f64::max);
    assert!(
        best_personalized > random,
        "personalized packages ({best_personalized}) should beat the random baseline ({random})"
    );
    assert!(
        best_personalized > non_personalized,
        "personalized packages ({best_personalized}) should beat the non-personalized baseline ({non_personalized})"
    );

    // Table 5: averaged over sizes, every personalized variant beats the
    // non-personalized package more often than not for uniform groups.
    let table5 = table5::run(&world);
    for name in ["AVTP", "ADTP", "DVTP"] {
        let vs_np: Vec<f64> = GroupSize::ALL
            .iter()
            .filter_map(|&size| table5.win_rate(Uniformity::Uniform, size, name, "NPTP"))
            .collect();
        if vs_np.is_empty() {
            continue;
        }
        let avg = vs_np.iter().sum::<f64>() / vs_np.len() as f64;
        assert!(
            avg >= 0.45,
            "{name} should not lose clearly to the non-personalized package (win rate {avg})"
        );
    }
}
