//! End-to-end integration test of the full GroupTravel pipeline: synthetic
//! dataset → topic models → profiles → consensus → package building →
//! metrics → customization → refinement → rebuilding in a second city.

use grouptravel::prelude::*;
use grouptravel::{refine_batch, CustomizationOp, MemberInteractions, ObjectiveWeights};
use grouptravel_topics::LdaConfig;

fn session_for(city: CitySpec, seed: u64) -> GroupTravelSession {
    let catalog = SyntheticCityGenerator::new(city, SyntheticCityConfig::small(seed)).generate();
    GroupTravelSession::new(
        catalog,
        SessionConfig {
            lda: LdaConfig {
                iterations: 40,
                ..LdaConfig::default()
            },
            ..SessionConfig::default()
        },
    )
    .expect("synthetic catalogs are non-empty")
}

#[test]
fn full_pipeline_from_dataset_to_refined_profile_in_another_city() {
    let paris = session_for(CitySpec::paris(), 101);
    let barcelona_catalog =
        SyntheticCityGenerator::new(CitySpec::barcelona(), SyntheticCityConfig::small(102))
            .generate();
    let barcelona = GroupTravelSession::with_vectorizer(
        barcelona_catalog,
        paris.vectorizer().clone(),
        paris.metric(),
    )
    .expect("barcelona session");

    // Profiles and consensus.
    let mut generator = SyntheticGroupGenerator::new(paris.profile_schema(), 3);
    let group = generator.group(GroupSize::Small, Uniformity::Uniform);
    let profile = group.profile(ConsensusMethod::pairwise_disagreement());
    assert_eq!(profile.schema(), paris.profile_schema());

    // Build and validate the package.
    let query = GroupQuery::paper_default();
    let mut package = paris
        .build_package(&profile, &query, &BuildConfig::default())
        .expect("paris package");
    assert_eq!(package.len(), 5);
    assert!(package.is_valid(paris.catalog(), &query));

    // Measure the dimensions.
    let dims = paris.measure(&package, &profile);
    assert!(dims.representativity > 0.0);
    assert!(dims.personalization > 0.0);

    // Customize: remove then replace.
    let weights = ObjectiveWeights::default();
    let mut log_total = 0usize;
    let victim = package.get(0).unwrap().poi_ids()[0];
    let log = paris
        .apply(
            &mut package,
            &CustomizationOp::Remove {
                ci_index: 0,
                poi: victim,
            },
            &profile,
            &query,
            &weights,
        )
        .unwrap();
    log_total += log.len();
    let replace_target = package.get(1).unwrap().poi_ids()[0];
    let log = paris
        .apply(
            &mut package,
            &CustomizationOp::Replace {
                ci_index: 1,
                poi: replace_target,
            },
            &profile,
            &query,
            &weights,
        )
        .unwrap();
    log_total += log.len();
    assert!(log_total >= 3);

    // Refine the profile from the pooled interactions.
    let mut member = MemberInteractions::new(group.members()[0].user_id);
    member.log.record_remove(victim);
    member.log.record_add(replace_target);
    let refined = refine_batch(&profile, &[member], paris.catalog(), paris.vectorizer());
    assert_eq!(refined.schema(), profile.schema());

    // The refined profile builds a valid package in Barcelona.
    let barcelona_package = barcelona
        .build_package(&refined, &query, &BuildConfig::default())
        .expect("barcelona package");
    assert_eq!(barcelona_package.len(), 5);
    assert!(barcelona_package.is_valid(barcelona.catalog(), &query));
    // The Barcelona package only contains Barcelona POIs.
    for id in barcelona_package.distinct_poi_ids() {
        assert!(barcelona.catalog().get(id).is_some());
    }
}

#[test]
fn consensus_methods_produce_different_packages_for_diverse_groups() {
    let session = session_for(CitySpec::paris(), 103);
    let mut generator = SyntheticGroupGenerator::new(session.profile_schema(), 5);
    let group = generator.group(GroupSize::Medium, Uniformity::NonUniform);
    let query = GroupQuery::paper_default();
    let config = BuildConfig::default();

    let packages: Vec<TravelPackage> = ConsensusMethod::paper_variants()
        .iter()
        .map(|m| {
            session
                .build_package(&group.profile(*m), &query, &config)
                .expect("package")
        })
        .collect();
    // At least one pair of methods must disagree on the package for a
    // diverse group — otherwise the choice of consensus would be irrelevant.
    let any_different = packages
        .iter()
        .enumerate()
        .any(|(i, a)| packages[i + 1..].iter().any(|b| a != b));
    assert!(any_different);
    // And every package is valid regardless of the consensus used.
    for p in &packages {
        assert!(p.is_valid(session.catalog(), &query));
    }
}

#[test]
fn packages_for_the_same_profile_are_reproducible_across_sessions() {
    // Two sessions over the same seed produce identical catalogs, topic
    // models and therefore identical packages — the determinism the
    // experiment harness relies on.
    let a = session_for(CitySpec::paris(), 104);
    let b = session_for(CitySpec::paris(), 104);
    let mut gen_a = SyntheticGroupGenerator::new(a.profile_schema(), 9);
    let mut gen_b = SyntheticGroupGenerator::new(b.profile_schema(), 9);
    let group_a = gen_a.group(GroupSize::Small, Uniformity::Uniform);
    let group_b = gen_b.group(GroupSize::Small, Uniformity::Uniform);
    let profile_a = group_a.profile(ConsensusMethod::average_preference());
    let profile_b = group_b.profile(ConsensusMethod::average_preference());
    let query = GroupQuery::paper_default();
    let pkg_a = a
        .build_package(&profile_a, &query, &BuildConfig::default())
        .unwrap();
    let pkg_b = b
        .build_package(&profile_b, &query, &BuildConfig::default())
        .unwrap();
    assert_eq!(pkg_a, pkg_b);
}

#[test]
fn budgeted_queries_keep_every_composite_item_affordable() {
    let session = session_for(CitySpec::paris(), 105);
    let mut generator = SyntheticGroupGenerator::new(session.profile_schema(), 11);
    let group = generator.group(GroupSize::Small, Uniformity::Uniform);
    let profile = group.profile(ConsensusMethod::average_preference());
    for budget in [15.0, 25.0, 100.0] {
        let query = GroupQuery::paper_default().with_budget(Some(budget));
        let package = session
            .build_package(&profile, &query, &BuildConfig::default())
            .expect("budgeted package");
        for ci in package.composite_items() {
            assert!(
                ci.total_cost(session.catalog()) <= budget + 1e-9,
                "budget {budget} exceeded"
            );
        }
    }
}
