//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Provides the macro/API surface the workspace benches use —
//! `criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! `bench_function`/`bench_with_input`, `sample_size`, and
//! [`Bencher::iter`] — backed by a simple wall-clock timer. Statistical
//! machinery (outlier analysis, HTML reports) is intentionally absent; each
//! benchmark reports mean ns/iter over a short measured run.
//!
//! Unless cargo passes `--bench` (i.e. a real `cargo bench` run), every
//! benchmark body runs exactly once, so benches act as smoke tests under
//! `cargo test` without dominating the test cycle.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Just the parameter.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo passes `--bench` when running `cargo bench`; under
        // `cargo test` it does not, and may pass `--test`. Mirror real
        // criterion: anything but an explicit bench run is a quick smoke run.
        let args: Vec<String> = std::env::args().collect();
        Self {
            test_mode: !args.iter().any(|a| a == "--bench") || args.iter().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), 10, self.test_mode, |b| f(b));
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.criterion.test_mode, |b| f(b));
        self
    }

    /// Runs a benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: impl Display, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, self.criterion.test_mode, |b| {
            f(b, input);
        });
        self
    }

    /// Ends the group (report flushing is a no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Passed to benchmark bodies; [`Bencher::iter`] times the closure.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    total: Duration,
    iterations: u64,
}

impl Bencher {
    /// Times `routine`, running it `samples` times (once in `--test` mode).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let runs = if self.test_mode { 1 } else { self.samples };
        for _ in 0..runs {
            let start = Instant::now();
            let out = routine();
            self.total += start.elapsed();
            self.iterations += 1;
            drop(out);
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, samples: usize, test_mode: bool, mut f: F) {
    let mut bencher = Bencher {
        samples,
        test_mode,
        total: Duration::ZERO,
        iterations: 0,
    };
    f(&mut bencher);
    if bencher.iterations == 0 {
        println!("{label:<50} (no iterations)");
        return;
    }
    let per_iter = bencher.total.as_nanos() / u128::from(bencher.iterations);
    println!(
        "{label:<50} {:>12} ns/iter ({} iters)",
        per_iter, bencher.iterations
    );
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export matching criterion's `black_box` (std's implementation).
pub use std::hint::black_box;
