//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! Supports the subset the workspace's property tests use: the [`proptest!`]
//! macro (with an optional `#![proptest_config(...)]` header), range and
//! tuple strategies, [`Strategy::prop_map`], `prop::collection::vec`,
//! [`arbitrary::any`], and the `prop_assert!`/`prop_assert_eq!` macros.
//!
//! Cases are generated from a deterministic per-test seed (an FNV hash of the
//! test name), so failures reproduce across runs. There is **no shrinking**:
//! a failing case panics with the assertion message and the case number.

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::SmallRng;

    /// A recipe for generating random values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn new_value(&self, rng: &mut SmallRng) -> U {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut SmallRng) -> T {
            self.0.clone()
        }
    }

    mod ranges {
        use super::Strategy;
        use rand::rngs::SmallRng;
        use rand::Rng;
        use std::ops::{Range, RangeInclusive};

        macro_rules! range_strategy {
            ($($t:ty),*) => {$(
                impl Strategy for Range<$t> {
                    type Value = $t;
                    fn new_value(&self, rng: &mut SmallRng) -> $t {
                        rng.gen_range(self.start..self.end)
                    }
                }
                impl Strategy for RangeInclusive<$t> {
                    type Value = $t;
                    fn new_value(&self, rng: &mut SmallRng) -> $t {
                        rng.gen_range(*self.start()..=*self.end())
                    }
                }
            )*};
        }

        range_strategy!(f64, usize, u64, u32, u8, i64, i32);
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident : $idx:tt),+)),*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut SmallRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy!(
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    );
}

/// `any::<T>()` support for simple types.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut SmallRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.gen_bool(0.5)
        }
    }

    impl Arbitrary for u8 {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.gen_range(0u8..=u8::MAX)
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.gen_range(0u32..=u32::MAX)
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.gen_range(0u64..=u64::MAX)
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut SmallRng) -> Self {
            rng.gen_range(0usize..=usize::MAX)
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut SmallRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy generating arbitrary values of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A size specification: exact, half-open, or inclusive.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            Self {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// A strategy generating `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Test-runner configuration and failure type.
pub mod test_runner {
    /// Configuration accepted via `#![proptest_config(...)]`.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real default is 256; the shim trims it to keep the heavier
            // clustering/LDA property tests fast in CI.
            Self { cases: 64 }
        }
    }

    /// A failed or rejected property check (carried through `prop_assert!`
    /// and `prop_assume!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
        rejected: bool,
    }

    impl TestCaseError {
        /// Builds a failure from a message.
        #[must_use]
        pub fn fail(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
                rejected: false,
            }
        }

        /// Builds a rejection (`prop_assume!` precondition not met); the
        /// runner skips the case instead of failing the test.
        #[must_use]
        pub fn reject(message: impl Into<String>) -> Self {
            Self {
                message: message.into(),
                rejected: true,
            }
        }

        /// Whether this is a rejection rather than a failure.
        #[must_use]
        pub fn is_rejection(&self) -> bool {
            self.rejected
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.message)
        }
    }
}

/// Seeds the per-test generator from the test's name (FNV-1a), so each test
/// sees a stable but distinct stream.
#[must_use]
pub fn seed_rng(test_name: &str) -> rand::rngs::SmallRng {
    use rand::SeedableRng;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    rand::rngs::SmallRng::seed_from_u64(hash)
}

/// The proptest entry-point macro. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test] fn name(arg in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config = $cfg;
                let mut __rng = $crate::seed_rng(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__config.cases {
                    $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                    let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = __result {
                        if e.is_rejection() {
                            continue;
                        }
                        panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name), __case + 1, __config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Skips the current case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!("precondition not met: {}", stringify!($cond)),
            ));
        }
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking directly) so the runner can report the case number.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), format!($($fmt)+), left, right
                ),
            ));
        }
    }};
}

/// The glob-import surface tests use: `use proptest::prelude::*;`.
pub mod prelude {
    /// `prop::collection::vec(...)` paths resolve through this alias.
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}
