//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! tiny slice of the rand 0.8 API it actually uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], and the [`Rng`] methods `gen_range` (over
//! half-open and inclusive float/integer ranges) and `gen_bool`. The generator
//! behind it is xoshiro256++ seeded through SplitMix64 — deterministic for a
//! given seed, which is all the reproduction relies on.

use std::ops::{Range, RangeInclusive};

/// A source of `u64` randomness.
pub trait RngCore {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support; only the `seed_from_u64` entry point is provided.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range. Supports `a..b` and `a..=b` over
    /// `f64`, `usize`, `u64`, `u32`, `i64` and `i32`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p.clamp(0.0, 1.0)
    }
}

impl<R: RngCore> Rng for R {}

/// Ranges that can be sampled; mirrors `rand::distributions::uniform`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to a float in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        debug_assert!(self.start < self.end, "empty f64 range");
        let f = unit_f64(rng.next_u64());
        self.start + f * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        debug_assert!(lo <= hi, "empty f64 range");
        let f = unit_f64(rng.next_u64());
        lo + f * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let draw = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(draw) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as u128) - (lo as u128) + 1;
                let draw = (rng.next_u64() as u128) % span;
                ((lo as u128) + draw) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u8);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

signed_sample_range!(i64, i32);

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the same family the real `SmallRng` uses on 64-bit
    /// targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let fi = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&fi));
            let u = rng.gen_range(3usize..17);
            assert!((3..17).contains(&u));
            let v = rng.gen_range(5u64..=5);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
