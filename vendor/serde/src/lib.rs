//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal serialization framework with the same spelling as serde: a
//! [`Serialize`]/[`Deserialize`] trait pair, `#[derive(Serialize,
//! Deserialize)]` via the sibling `serde_derive` proc-macro, and the
//! `#[serde(skip)]` field attribute. The interchange model is an owned
//! [`Value`] tree; `serde_json` (also vendored) renders that tree to and
//! from JSON text.
//!
//! On top of the tree model there is a streaming fast path, mirroring real
//! serde's visitor architecture in miniature: [`Serialize::stream`] pushes
//! a value into a [`Sink`] and [`Deserialize::decode`] pulls one out of a
//! [`Source`] without materializing the tree in between. Both have
//! tree-backed defaults, so hand-written impls only need `to_value` /
//! `from_value`; the derive overrides both for every derived type, and the
//! [`ValueBuilder`] / [`ValueSource`] adapters let tests pin the two paths
//! against each other (`stream` must emit exactly what `to_value` builds,
//! `decode` must accept exactly what `from_value` accepts).
//!
//! Supported shapes — the ones this workspace actually derives:
//! structs with named fields, newtype/tuple structs, enums with unit and
//! struct variants (externally tagged, like serde's default).

use std::borrow::Cow;

pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing data tree; the interchange format between
/// `Serialize`, `Deserialize` and the JSON front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (preserves field order for stable JSON output).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object value, if this is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of an array value, if this is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error: a message, optionally with the offending type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Builds an error from a message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

// ---------------------------------------------------------------------------
// Streaming model
// ---------------------------------------------------------------------------

/// The lexical class of the next value in a [`Source`] — which [`Value`]
/// variant it would decode to, without decoding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool,
    /// A signed integer.
    Int,
    /// An unsigned integer.
    UInt,
    /// A float.
    Float,
    /// A string.
    Str,
    /// An ordered sequence.
    Array,
    /// An ordered map.
    Object,
}

/// A push-style serialization sink: the streaming counterpart of building
/// a [`Value`] tree. One complete value is one scalar call, or an
/// `array(len)` followed by exactly `len` complete values, or an
/// `object(len)` followed by exactly `len` `name` + complete-value pairs.
pub trait Sink {
    /// A `null` value.
    fn null(&mut self);
    /// A boolean value.
    fn boolean(&mut self, v: bool);
    /// A signed integer value.
    fn int(&mut self, v: i64);
    /// An unsigned integer value.
    fn uint(&mut self, v: u64);
    /// A float value.
    fn float(&mut self, v: f64);
    /// A string value.
    fn string(&mut self, v: &str);
    /// Begins an array of exactly `len` values.
    fn array(&mut self, len: usize);
    /// Begins an object of exactly `len` members.
    fn object(&mut self, len: usize);
    /// The name of the next object member.
    fn name(&mut self, name: &str);
}

/// Streams a [`Value`] tree into a sink — the bridge between the tree and
/// streaming models, and the body of [`Serialize::stream`]'s default.
pub fn stream_value(value: &Value, sink: &mut dyn Sink) {
    match value {
        Value::Null => sink.null(),
        Value::Bool(b) => sink.boolean(*b),
        Value::Int(i) => sink.int(*i),
        Value::UInt(u) => sink.uint(*u),
        Value::Float(f) => sink.float(*f),
        Value::Str(s) => sink.string(s),
        Value::Array(items) => {
            sink.array(items.len());
            for item in items {
                stream_value(item, sink);
            }
        }
        Value::Object(entries) => {
            sink.object(entries.len());
            for (name, v) in entries {
                sink.name(name);
                stream_value(v, sink);
            }
        }
    }
}

/// A pull-style deserialization source: the streaming counterpart of
/// walking a [`Value`] tree. `peek` classifies the next value without
/// consuming it; the typed getters consume exactly one value (or one
/// array/object header); `name` consumes the next member name inside an
/// object; `skip_value` consumes one complete value of any shape.
pub trait Source {
    /// Classifies the next value without consuming anything.
    ///
    /// # Errors
    /// Fails when no value follows or the input is corrupt.
    fn peek(&mut self) -> Result<Kind, DeError>;
    /// Consumes a `null`.
    ///
    /// # Errors
    /// Fails when the next value is not a `null`.
    fn null(&mut self) -> Result<(), DeError>;
    /// Consumes a boolean.
    ///
    /// # Errors
    /// Fails when the next value is not a boolean.
    fn boolean(&mut self) -> Result<bool, DeError>;
    /// Consumes a signed integer.
    ///
    /// # Errors
    /// Fails when the next value is not a signed integer.
    fn int(&mut self) -> Result<i64, DeError>;
    /// Consumes an unsigned integer.
    ///
    /// # Errors
    /// Fails when the next value is not an unsigned integer.
    fn uint(&mut self) -> Result<u64, DeError>;
    /// Consumes a float.
    ///
    /// # Errors
    /// Fails when the next value is not a float.
    fn float(&mut self) -> Result<f64, DeError>;
    /// Consumes a string.
    ///
    /// # Errors
    /// Fails when the next value is not a string.
    fn string(&mut self) -> Result<String, DeError>;
    /// Consumes an array header; exactly the returned count of values
    /// follow.
    ///
    /// # Errors
    /// Fails when the next value is not an array.
    fn array(&mut self) -> Result<usize, DeError>;
    /// Consumes an object header; exactly the returned count of name +
    /// value pairs follow.
    ///
    /// # Errors
    /// Fails when the next value is not an object.
    fn object(&mut self) -> Result<usize, DeError>;
    /// Consumes the next object member name.
    ///
    /// # Errors
    /// Fails when the input is corrupt or no member name follows.
    fn name(&mut self) -> Result<Cow<'static, str>, DeError>;
    /// Consumes one complete value of any shape.
    ///
    /// # Errors
    /// Fails when the input is corrupt.
    fn skip_value(&mut self) -> Result<(), DeError>;
    /// Consumes one complete value as a tree — the fallback bridge for
    /// [`Deserialize::from_value`]-only impls.
    ///
    /// # Errors
    /// Fails when the input is corrupt.
    fn read_value(&mut self) -> Result<Value, DeError>;
}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the interchange tree.
    fn to_value(&self) -> Value;

    /// Streams `self` into `sink` without building an intermediate tree.
    ///
    /// Contract: must emit exactly the shape [`Serialize::to_value`] would
    /// build. The default guarantees that by walking the tree; overrides
    /// (including the derive's) exist purely to skip its allocations.
    fn stream(&self, sink: &mut dyn Sink) {
        stream_value(&self.to_value(), sink);
    }
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of the interchange tree.
    ///
    /// # Errors
    /// Fails when the value does not parse as `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;

    /// Pulls `self` out of a streaming source without materializing the
    /// tree.
    ///
    /// Contract: must accept exactly the inputs [`Deserialize::from_value`]
    /// accepts on the equivalent tree (same unknown-member skipping, same
    /// first-occurrence-wins duplicate handling, same numeric coercions).
    /// The default guarantees that by materializing the tree.
    ///
    /// # Errors
    /// Fails when the streamed value does not parse as `Self`.
    fn decode(src: &mut dyn Source) -> Result<Self, DeError> {
        Self::from_value(&src.read_value()?)
    }
}

/// Helper used by the derive macro: fetch and parse a named field.
///
/// # Errors
/// Fails when the field is missing or its value does not parse as `T`.
pub fn field<T: Deserialize>(
    obj: &[(String, Value)],
    name: &str,
    owner: &str,
) -> Result<T, DeError> {
    let value = obj
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("{owner}: missing field `{name}`")))?;
    T::from_value(value).map_err(|e| DeError::custom(format!("{owner}.{name}: {e}")))
}

// ---------------------------------------------------------------------------
// Tree-backed streaming adapters
// ---------------------------------------------------------------------------

enum BuilderFrame {
    Array {
        items: Vec<Value>,
        remaining: usize,
    },
    Object {
        entries: Vec<(String, Value)>,
        remaining: usize,
        pending_name: Option<String>,
    },
}

/// A [`Sink`] that builds the [`Value`] tree the stream describes — the
/// inverse of [`stream_value`]. Primarily a differential-testing aid: for
/// any correct `Serialize` impl, streaming into a `ValueBuilder` must
/// reproduce `to_value` exactly.
#[derive(Default)]
pub struct ValueBuilder {
    stack: Vec<BuilderFrame>,
    root: Option<Value>,
}

impl ValueBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The completed tree.
    ///
    /// # Panics
    /// Panics when the stream did not describe exactly one complete value —
    /// that is a `Serialize::stream` contract violation, not an input error.
    #[must_use]
    pub fn finish(self) -> Value {
        assert!(
            self.stack.is_empty(),
            "stream ended inside an unfinished container"
        );
        self.root.expect("stream produced no value")
    }

    fn put(&mut self, value: Value) {
        let mut value = value;
        loop {
            match self.stack.last_mut() {
                None => {
                    assert!(self.root.is_none(), "stream produced a second root value");
                    self.root = Some(value);
                    return;
                }
                Some(BuilderFrame::Array { items, remaining }) => {
                    items.push(value);
                    *remaining -= 1;
                    if *remaining > 0 {
                        return;
                    }
                }
                Some(BuilderFrame::Object {
                    entries,
                    remaining,
                    pending_name,
                }) => {
                    let name = pending_name.take().expect("member value before its name");
                    entries.push((name, value));
                    *remaining -= 1;
                    if *remaining > 0 {
                        return;
                    }
                }
            }
            // The top container just completed; pop and attach it upward.
            value = match self.stack.pop() {
                Some(BuilderFrame::Array { items, .. }) => Value::Array(items),
                Some(BuilderFrame::Object { entries, .. }) => Value::Object(entries),
                None => unreachable!(),
            };
        }
    }
}

impl Sink for ValueBuilder {
    fn null(&mut self) {
        self.put(Value::Null);
    }
    fn boolean(&mut self, v: bool) {
        self.put(Value::Bool(v));
    }
    fn int(&mut self, v: i64) {
        self.put(Value::Int(v));
    }
    fn uint(&mut self, v: u64) {
        self.put(Value::UInt(v));
    }
    fn float(&mut self, v: f64) {
        self.put(Value::Float(v));
    }
    fn string(&mut self, v: &str) {
        self.put(Value::Str(v.to_string()));
    }
    fn array(&mut self, len: usize) {
        if len == 0 {
            self.put(Value::Array(Vec::new()));
        } else {
            self.stack.push(BuilderFrame::Array {
                items: Vec::with_capacity(len),
                remaining: len,
            });
        }
    }
    fn object(&mut self, len: usize) {
        if len == 0 {
            self.put(Value::Object(Vec::new()));
        } else {
            self.stack.push(BuilderFrame::Object {
                entries: Vec::with_capacity(len),
                remaining: len,
                pending_name: None,
            });
        }
    }
    fn name(&mut self, name: &str) {
        match self.stack.last_mut() {
            Some(BuilderFrame::Object { pending_name, .. }) => {
                assert!(pending_name.is_none(), "two names without a value between");
                *pending_name = Some(name.to_string());
            }
            _ => panic!("member name outside an object"),
        }
    }
}

enum SourceEvent<'a> {
    /// One complete (unexpanded) value.
    Val(&'a Value),
    /// An object member name.
    MemberName(&'a str),
}

/// A [`Source`] that streams an existing [`Value`] tree — the adapter
/// behind [`Deserialize::decode`]'s default, and the differential-testing
/// counterpart of [`ValueBuilder`]: for any correct `Deserialize` impl,
/// `decode` over a `ValueSource` must agree with `from_value` on the same
/// tree.
pub struct ValueSource<'a> {
    queue: std::collections::VecDeque<SourceEvent<'a>>,
}

impl<'a> ValueSource<'a> {
    /// A source that yields `value` as its one complete value.
    #[must_use]
    pub fn new(value: &'a Value) -> Self {
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(SourceEvent::Val(value));
        Self { queue }
    }

    fn next_value(&mut self, want: &str) -> Result<&'a Value, DeError> {
        match self.queue.pop_front() {
            Some(SourceEvent::Val(v)) => Ok(v),
            Some(SourceEvent::MemberName(n)) => Err(DeError::custom(format!(
                "expected {want}, got member name `{n}`"
            ))),
            None => Err(DeError::custom(format!(
                "expected {want}, got end of input"
            ))),
        }
    }
}

impl Source for ValueSource<'_> {
    fn peek(&mut self) -> Result<Kind, DeError> {
        match self.queue.front() {
            Some(SourceEvent::Val(v)) => Ok(match v {
                Value::Null => Kind::Null,
                Value::Bool(_) => Kind::Bool,
                Value::Int(_) => Kind::Int,
                Value::UInt(_) => Kind::UInt,
                Value::Float(_) => Kind::Float,
                Value::Str(_) => Kind::Str,
                Value::Array(_) => Kind::Array,
                Value::Object(_) => Kind::Object,
            }),
            Some(SourceEvent::MemberName(n)) => Err(DeError::custom(format!(
                "expected a value, got member name `{n}`"
            ))),
            None => Err(DeError::custom("expected a value, got end of input")),
        }
    }
    fn null(&mut self) -> Result<(), DeError> {
        match self.next_value("null")? {
            Value::Null => Ok(()),
            other => Err(DeError::custom(format!("expected null, got {other:?}"))),
        }
    }
    fn boolean(&mut self) -> Result<bool, DeError> {
        match self.next_value("bool")? {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
    fn int(&mut self) -> Result<i64, DeError> {
        match self.next_value("integer")? {
            Value::Int(i) => Ok(*i),
            other => Err(DeError::custom(format!("expected integer, got {other:?}"))),
        }
    }
    fn uint(&mut self) -> Result<u64, DeError> {
        match self.next_value("unsigned integer")? {
            Value::UInt(u) => Ok(*u),
            other => Err(DeError::custom(format!(
                "expected unsigned integer, got {other:?}"
            ))),
        }
    }
    fn float(&mut self) -> Result<f64, DeError> {
        match self.next_value("float")? {
            Value::Float(f) => Ok(*f),
            other => Err(DeError::custom(format!("expected float, got {other:?}"))),
        }
    }
    fn string(&mut self) -> Result<String, DeError> {
        match self.next_value("string")? {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
    fn array(&mut self) -> Result<usize, DeError> {
        match self.next_value("array")? {
            Value::Array(items) => {
                for item in items.iter().rev() {
                    self.queue.push_front(SourceEvent::Val(item));
                }
                Ok(items.len())
            }
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
    fn object(&mut self) -> Result<usize, DeError> {
        match self.next_value("object")? {
            Value::Object(entries) => {
                for (name, v) in entries.iter().rev() {
                    self.queue.push_front(SourceEvent::Val(v));
                    self.queue.push_front(SourceEvent::MemberName(name));
                }
                Ok(entries.len())
            }
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
    fn name(&mut self) -> Result<Cow<'static, str>, DeError> {
        match self.queue.pop_front() {
            Some(SourceEvent::MemberName(n)) => Ok(Cow::Owned(n.to_string())),
            Some(SourceEvent::Val(v)) => Err(DeError::custom(format!(
                "expected a member name, got value {v:?}"
            ))),
            None => Err(DeError::custom("expected a member name, got end of input")),
        }
    }
    fn skip_value(&mut self) -> Result<(), DeError> {
        // An unexpanded `Val` event is the whole subtree.
        self.next_value("a value").map(|_| ())
    }
    fn read_value(&mut self) -> Result<Value, DeError> {
        self.next_value("a value").cloned()
    }
}

// ---------------------------------------------------------------------------
// Streaming helpers shared by the numeric impls
// ---------------------------------------------------------------------------

/// Pulls an unsigned integer with [`Deserialize::from_value`]'s coercions:
/// `UInt`, non-negative `Int`, or an integral in-range `Float`.
fn source_u64(src: &mut dyn Source) -> Result<u64, DeError> {
    match src.peek()? {
        Kind::UInt => src.uint(),
        Kind::Int => {
            let i = src.int()?;
            u64::try_from(i)
                .map_err(|_| DeError::custom(format!("expected unsigned integer, got {i}")))
        }
        Kind::Float => {
            let f = src.float()?;
            if f.fract() == 0.0 && f >= 0.0 && f <= u64::MAX as f64 {
                Ok(f as u64)
            } else {
                Err(DeError::custom(format!(
                    "expected unsigned integer, got float {f}"
                )))
            }
        }
        other => Err(DeError::custom(format!(
            "expected unsigned integer, got {other:?}"
        ))),
    }
}

/// Pulls a signed integer with [`Deserialize::from_value`]'s coercions:
/// `Int`, in-range `UInt`, or an integral `Float`.
fn source_i64(src: &mut dyn Source) -> Result<i64, DeError> {
    match src.peek()? {
        Kind::Int => src.int(),
        Kind::UInt => {
            let u = src.uint()?;
            i64::try_from(u).map_err(|_| DeError::custom(format!("expected integer, got {u}")))
        }
        Kind::Float => {
            let f = src.float()?;
            if f.fract() == 0.0 {
                Ok(f as i64)
            } else {
                Err(DeError::custom(format!("expected integer, got float {f}")))
            }
        }
        other => Err(DeError::custom(format!("expected integer, got {other:?}"))),
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
    fn stream(&self, sink: &mut dyn Sink) {
        (**self).stream(sink);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
    fn stream(&self, sink: &mut dyn Sink) {
        (**self).stream(sink);
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
    fn decode(src: &mut dyn Source) -> Result<Self, DeError> {
        T::decode(src).map(Box::new)
    }
}

/// `Result` uses serde's externally-tagged representation:
/// `{"Ok": value}` / `{"Err": error}`.
impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        match self {
            Ok(value) => Value::Object(vec![("Ok".to_string(), value.to_value())]),
            Err(error) => Value::Object(vec![("Err".to_string(), error.to_value())]),
        }
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.object(1);
        match self {
            Ok(value) => {
                sink.name("Ok");
                value.stream(sink);
            }
            Err(error) => {
                sink.name("Err");
                error.stream(sink);
            }
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_object()
            .filter(|entries| entries.len() == 1)
            .ok_or_else(|| {
                DeError::custom(format!("Result: expected single-key object, got {v:?}"))
            })?;
        let (tag, inner) = &entries[0];
        match tag.as_str() {
            "Ok" => T::from_value(inner).map(Ok),
            "Err" => E::from_value(inner).map(Err),
            other => Err(DeError::custom(format!(
                "Result: expected `Ok` or `Err`, got `{other}`"
            ))),
        }
    }
    fn decode(src: &mut dyn Source) -> Result<Self, DeError> {
        let members = src
            .object()
            .map_err(|e| DeError::custom(format!("Result: {e}")))?;
        if members != 1 {
            return Err(DeError::custom(format!(
                "Result: expected single-key object, got {members} members"
            )));
        }
        let tag = src.name()?;
        match tag.as_ref() {
            "Ok" => T::decode(src).map(Ok),
            "Err" => E::decode(src).map(Err),
            other => Err(DeError::custom(format!(
                "Result: expected `Ok` or `Err`, got `{other}`"
            ))),
        }
    }
}

/// `Duration` round-trips as `{"secs": u64, "nanos": u32}` — exact, like
/// real serde's representation.
impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.object(2);
        sink.name("secs");
        sink.uint(self.as_secs());
        sink.name("nanos");
        sink.uint(u64::from(self.subsec_nanos()));
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("Duration: expected object, got {v:?}")))?;
        let secs: u64 = field(obj, "secs", "Duration")?;
        let nanos: u32 = field(obj, "nanos", "Duration")?;
        if nanos >= 1_000_000_000 {
            return Err(DeError::custom(format!(
                "Duration: nanos {nanos} out of range"
            )));
        }
        Ok(std::time::Duration::new(secs, nanos))
    }
    fn decode(src: &mut dyn Source) -> Result<Self, DeError> {
        let members = src
            .object()
            .map_err(|e| DeError::custom(format!("Duration: {e}")))?;
        let mut secs: Option<u64> = None;
        let mut nanos: Option<u32> = None;
        for _ in 0..members {
            let name = src.name()?;
            match name.as_ref() {
                "secs" if secs.is_none() => {
                    secs = Some(
                        u64::decode(src)
                            .map_err(|e| DeError::custom(format!("Duration.secs: {e}")))?,
                    );
                }
                "nanos" if nanos.is_none() => {
                    nanos = Some(
                        u32::decode(src)
                            .map_err(|e| DeError::custom(format!("Duration.nanos: {e}")))?,
                    );
                }
                _ => src.skip_value()?,
            }
        }
        let secs = secs.ok_or_else(|| DeError::custom("Duration: missing field `secs`"))?;
        let nanos = nanos.ok_or_else(|| DeError::custom("Duration: missing field `nanos`"))?;
        if nanos >= 1_000_000_000 {
            return Err(DeError::custom(format!(
                "Duration: nanos {nanos} out of range"
            )));
        }
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.boolean(*self);
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
    fn decode(src: &mut dyn Source) -> Result<Self, DeError> {
        match src.peek()? {
            Kind::Bool => src.boolean(),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.string(self);
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
    fn decode(src: &mut dyn Source) -> Result<Self, DeError> {
        match src.peek()? {
            Kind::Str => src.string(),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.string(self);
    }
}

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
            fn stream(&self, sink: &mut dyn Sink) {
                sink.uint(*self as u64);
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: u64 = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
            fn decode(src: &mut dyn Source) -> Result<Self, DeError> {
                let raw = source_u64(src)?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
            fn stream(&self, sink: &mut dyn Sink) {
                sink.int(*self as i64);
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) if *u <= i64::MAX as u64 => *u as i64,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
            fn decode(src: &mut dyn Source) -> Result<Self, DeError> {
                let raw = source_i64(src)?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.float(*self);
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(DeError::custom(format!("expected number, got {other:?}"))),
        }
    }
    fn decode(src: &mut dyn Source) -> Result<Self, DeError> {
        match src.peek()? {
            Kind::Float => src.float(),
            Kind::Int => Ok(src.int()? as f64),
            Kind::UInt => Ok(src.uint()? as f64),
            other => Err(DeError::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.float(f64::from(*self));
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
    fn decode(src: &mut dyn Source) -> Result<Self, DeError> {
        f64::decode(src).map(|f| f as f32)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.array(self.len());
        for item in self {
            item.stream(sink);
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
    fn decode(src: &mut dyn Source) -> Result<Self, DeError> {
        let len = src.array()?;
        // Cap the pre-allocation: `len` is source-declared, and a hostile
        // source could overclaim it.
        let mut items = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            items.push(T::decode(src)?);
        }
        Ok(items)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
    fn stream(&self, sink: &mut dyn Sink) {
        match self {
            Some(inner) => inner.stream(sink),
            None => sink.null(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
    fn decode(src: &mut dyn Source) -> Result<Self, DeError> {
        if src.peek()? == Kind::Null {
            src.null()?;
            Ok(None)
        } else {
            T::decode(src).map(Some)
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
    fn stream(&self, sink: &mut dyn Sink) {
        sink.array(N);
        for item in self {
            item.stream(sink);
        }
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {len}")))
    }
    fn decode(src: &mut dyn Source) -> Result<Self, DeError> {
        let len = src.array()?;
        if len != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, got {len}"
            )));
        }
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::decode(src)?);
        }
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}")))
    }
}

macro_rules! tuple_impl {
    ($(($($t:ident : $idx:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
            fn stream(&self, sink: &mut dyn Sink) {
                let expected = [$($idx),+].len();
                sink.array(expected);
                $(self.$idx.stream(sink);)+
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::custom(format!("expected tuple array, got {v:?}")))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected} elements, got {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
            fn decode(src: &mut dyn Source) -> Result<Self, DeError> {
                let len = src.array()?;
                let expected = [$($idx),+].len();
                if len != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected} elements, got {len}"
                    )));
                }
                Ok(($(<$t as Deserialize>::decode(src)?,)+))
            }
        }
    )*};
}

tuple_impl!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Stable output: sort entries by their rendered key.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = match k.to_value() {
                    Value::Str(s) => s,
                    Value::UInt(u) => u.to_string(),
                    Value::Int(i) => i.to_string(),
                    other => format!("{other:?}"),
                };
                (key, v.to_value())
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
    fn stream(&self, sink: &mut dyn Sink) {
        let mut entries: Vec<(String, &V)> = self
            .iter()
            .map(|(k, v)| {
                let key = match k.to_value() {
                    Value::Str(s) => s,
                    Value::UInt(u) => u.to_string(),
                    Value::Int(i) => i.to_string(),
                    other => format!("{other:?}"),
                };
                (key, v)
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        sink.object(entries.len());
        for (key, v) in entries {
            sink.name(&key);
            v.stream(sink);
        }
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected map object, got {v:?}")))?;
        let mut map = Self::with_capacity_and_hasher(entries.len(), S::default());
        for (key, value) in entries {
            // JSON object keys are strings; numeric key types round-trip
            // through a parse of the key text.
            let key_value = Value::Str(key.clone());
            let k = K::from_value(&key_value).or_else(|e| {
                if let Ok(u) = key.parse::<u64>() {
                    K::from_value(&Value::UInt(u))
                } else if let Ok(i) = key.parse::<i64>() {
                    K::from_value(&Value::Int(i))
                } else {
                    Err(e)
                }
            })?;
            map.insert(k, V::from_value(value)?);
        }
        Ok(map)
    }
    fn decode(src: &mut dyn Source) -> Result<Self, DeError> {
        let members = src.object()?;
        let mut map = Self::with_capacity_and_hasher(members.min(4096), S::default());
        for _ in 0..members {
            let key: String = src.name()?.into_owned();
            let key_value = Value::Str(key.clone());
            let k = K::from_value(&key_value).or_else(|e| {
                if let Ok(u) = key.parse::<u64>() {
                    K::from_value(&Value::UInt(u))
                } else if let Ok(i) = key.parse::<i64>() {
                    K::from_value(&Value::Int(i))
                } else {
                    Err(e)
                }
            })?;
            map.insert(k, V::decode(src)?);
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-5i32).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let arr = [1usize, 2, 3, 4];
        assert_eq!(<[usize; 4]>::from_value(&arr.to_value()).unwrap(), arr);
        let opt: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&opt.to_value()).unwrap(), None);
        let pair = ("x".to_string(), 9u64);
        assert_eq!(<(String, u64)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn box_result_duration_round_trip() {
        let boxed = Box::new(7u64);
        assert_eq!(Box::<u64>::from_value(&boxed.to_value()).unwrap(), boxed);

        let ok: Result<u64, String> = Ok(3);
        let err: Result<u64, String> = Err("boom".to_string());
        assert_eq!(
            Result::<u64, String>::from_value(&ok.to_value()).unwrap(),
            ok
        );
        assert_eq!(
            Result::<u64, String>::from_value(&err.to_value()).unwrap(),
            err
        );

        let d = std::time::Duration::new(3, 999_999_999);
        assert_eq!(std::time::Duration::from_value(&d.to_value()).unwrap(), d);
        let bad = Value::Object(vec![
            ("secs".to_string(), Value::UInt(0)),
            ("nanos".to_string(), Value::UInt(1_000_000_000)),
        ]);
        assert!(std::time::Duration::from_value(&bad).is_err());
    }

    #[test]
    fn missing_field_errors_name_the_owner() {
        let obj = vec![("a".to_string(), Value::UInt(1))];
        let err = field::<u64>(&obj, "b", "Widget").unwrap_err();
        assert!(err.to_string().contains("Widget"));
        assert!(err.to_string().contains("`b`"));
    }

    /// `stream` into a [`ValueBuilder`] must reproduce `to_value` exactly.
    fn assert_stream_matches_tree<T: Serialize>(value: &T) {
        let mut builder = ValueBuilder::new();
        value.stream(&mut builder);
        assert_eq!(builder.finish(), value.to_value());
    }

    /// `decode` over a [`ValueSource`] must agree with `from_value`.
    fn assert_decode_matches_tree<T: Deserialize + PartialEq + std::fmt::Debug>(tree: &Value) {
        let via_tree = T::from_value(tree);
        let via_stream = T::decode(&mut ValueSource::new(tree));
        assert_eq!(via_stream.is_ok(), via_tree.is_ok(), "disagree on {tree:?}");
        if let (Ok(a), Ok(b)) = (via_stream, via_tree) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn streaming_matches_the_tree_path_for_every_builtin_impl() {
        assert_stream_matches_tree(&42u64);
        assert_stream_matches_tree(&-5i32);
        assert_stream_matches_tree(&1.5f64);
        assert_stream_matches_tree(&2.5f32);
        assert_stream_matches_tree(&true);
        assert_stream_matches_tree(&"hi".to_string());
        assert_stream_matches_tree(&vec![1u64, 2, 3]);
        assert_stream_matches_tree(&Vec::<u64>::new());
        assert_stream_matches_tree(&[0.25f64; 4]);
        assert_stream_matches_tree(&Some(7u8));
        assert_stream_matches_tree(&Option::<u8>::None);
        assert_stream_matches_tree(&("x".to_string(), 9u64, -1i64));
        assert_stream_matches_tree(&Box::new(vec![Some(1u32), None]));
        assert_stream_matches_tree(&Result::<u64, String>::Ok(3));
        assert_stream_matches_tree(&Result::<u64, String>::Err("boom".into()));
        assert_stream_matches_tree(&std::time::Duration::new(3, 999_999_999));
        let mut map = std::collections::HashMap::new();
        map.insert(2u64, vec![1.5f64]);
        map.insert(1u64, vec![-2.5f64]);
        assert_stream_matches_tree(&map);

        assert_decode_matches_tree::<u64>(&42u64.to_value());
        assert_decode_matches_tree::<u64>(&Value::Int(-3));
        assert_decode_matches_tree::<u64>(&Value::Float(8.0));
        assert_decode_matches_tree::<u64>(&Value::Float(8.5));
        assert_decode_matches_tree::<i16>(&Value::UInt(1 << 40));
        assert_decode_matches_tree::<f64>(&Value::Int(-3));
        assert_decode_matches_tree::<Vec<u64>>(&vec![1u64, 2].to_value());
        assert_decode_matches_tree::<[f64; 4]>(&[0.25f64; 4].to_value());
        assert_decode_matches_tree::<[f64; 4]>(&vec![0.25f64; 3].to_value());
        assert_decode_matches_tree::<Option<u8>>(&Value::Null);
        assert_decode_matches_tree::<(String, u64)>(&("x".to_string(), 9u64).to_value());
        assert_decode_matches_tree::<Result<u64, String>>(
            &Result::<u64, String>::Err("boom".into()).to_value(),
        );
        assert_decode_matches_tree::<std::time::Duration>(
            &std::time::Duration::new(3, 7).to_value(),
        );
        let with_extras = Value::Object(vec![
            ("ignored".to_string(), Value::Str("x".to_string())),
            ("nanos".to_string(), Value::UInt(7)),
            ("secs".to_string(), Value::UInt(3)),
        ]);
        assert_decode_matches_tree::<std::time::Duration>(&with_extras);
        assert_decode_matches_tree::<std::collections::HashMap<u64, u64>>(&Value::Object(vec![
            ("2".to_string(), Value::UInt(5)),
            ("1".to_string(), Value::UInt(4)),
        ]));
    }

    #[test]
    fn value_source_round_trips_arbitrary_trees() {
        let tree = Value::Object(vec![
            (
                "a".to_string(),
                Value::Array(vec![Value::Null, Value::Bool(true)]),
            ),
            (
                "b".to_string(),
                Value::Object(vec![("c".to_string(), Value::Float(0.5))]),
            ),
            ("d".to_string(), Value::Str("s".to_string())),
        ]);
        let mut src = ValueSource::new(&tree);
        let back = Source::read_value(&mut src).unwrap();
        assert_eq!(back, tree);
        // stream_value through a ValueBuilder is the identity too.
        let mut builder = ValueBuilder::new();
        stream_value(&tree, &mut builder);
        assert_eq!(builder.finish(), tree);
    }
}
