//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal serialization framework with the same spelling as serde: a
//! [`Serialize`]/[`Deserialize`] trait pair, `#[derive(Serialize,
//! Deserialize)]` via the sibling `serde_derive` proc-macro, and the
//! `#[serde(skip)]` field attribute. Instead of serde's zero-copy visitor
//! architecture, everything round-trips through an owned [`Value`] tree;
//! `serde_json` (also vendored) renders that tree to and from JSON text.
//!
//! Supported shapes — the ones this workspace actually derives:
//! structs with named fields, newtype/tuple structs, enums with unit and
//! struct variants (externally tagged, like serde's default).

pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing data tree; the interchange format between
/// `Serialize`, `Deserialize` and the JSON front-end.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map (preserves field order for stable JSON output).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object value, if this is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements of an array value, if this is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Deserialization error: a message, optionally with the offending type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Builds an error from a message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Converts `self` into the interchange tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses `self` out of the interchange tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Helper used by the derive macro: fetch and parse a named field.
///
/// # Errors
/// Fails when the field is missing or its value does not parse as `T`.
pub fn field<T: Deserialize>(
    obj: &[(String, Value)],
    name: &str,
    owner: &str,
) -> Result<T, DeError> {
    let value = obj
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("{owner}: missing field `{name}`")))?;
    T::from_value(value).map_err(|e| DeError::custom(format!("{owner}.{name}: {e}")))
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

/// `Result` uses serde's externally-tagged representation:
/// `{"Ok": value}` / `{"Err": error}`.
impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_value(&self) -> Value {
        match self {
            Ok(value) => Value::Object(vec![("Ok".to_string(), value.to_value())]),
            Err(error) => Value::Object(vec![("Err".to_string(), error.to_value())]),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_object()
            .filter(|entries| entries.len() == 1)
            .ok_or_else(|| {
                DeError::custom(format!("Result: expected single-key object, got {v:?}"))
            })?;
        let (tag, inner) = &entries[0];
        match tag.as_str() {
            "Ok" => T::from_value(inner).map(Ok),
            "Err" => E::from_value(inner).map(Err),
            other => Err(DeError::custom(format!(
                "Result: expected `Ok` or `Err`, got `{other}`"
            ))),
        }
    }
}

/// `Duration` round-trips as `{"secs": u64, "nanos": u32}` — exact, like
/// real serde's representation.
impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::UInt(self.as_secs())),
            (
                "nanos".to_string(),
                Value::UInt(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("Duration: expected object, got {v:?}")))?;
        let secs: u64 = field(obj, "secs", "Duration")?;
        let nanos: u32 = field(obj, "nanos", "Duration")?;
        if nanos >= 1_000_000_000 {
            return Err(DeError::custom(format!(
                "Duration: nanos {nanos} out of range"
            )));
        }
        Ok(std::time::Duration::new(secs, nanos))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: u64 = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 && *f <= u64::MAX as f64 => {
                        *f as u64
                    }
                    other => {
                        return Err(DeError::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) if *u <= i64::MAX as u64 => *u as i64,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(DeError::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! tuple_impl {
    ($(($($t:ident : $idx:tt),+)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v
                    .as_array()
                    .ok_or_else(|| DeError::custom(format!("expected tuple array, got {v:?}")))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of {expected} elements, got {}",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impl!((A: 0), (A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl<K: Serialize, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        // Stable output: sort entries by their rendered key.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| {
                let key = match k.to_value() {
                    Value::Str(s) => s,
                    Value::UInt(u) => u.to_string(),
                    Value::Int(i) => i.to_string(),
                    other => format!("{other:?}"),
                };
                (key, v.to_value())
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K, V, S> Deserialize for std::collections::HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let entries = v
            .as_object()
            .ok_or_else(|| DeError::custom(format!("expected map object, got {v:?}")))?;
        let mut map = Self::with_capacity_and_hasher(entries.len(), S::default());
        for (key, value) in entries {
            // JSON object keys are strings; numeric key types round-trip
            // through a parse of the key text.
            let key_value = Value::Str(key.clone());
            let k = K::from_value(&key_value).or_else(|e| {
                if let Ok(u) = key.parse::<u64>() {
                    K::from_value(&Value::UInt(u))
                } else if let Ok(i) = key.parse::<i64>() {
                    K::from_value(&Value::Int(i))
                } else {
                    Err(e)
                }
            })?;
            map.insert(k, V::from_value(value)?);
        }
        Ok(map)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-5i32).to_value()).unwrap(), -5);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let arr = [1usize, 2, 3, 4];
        assert_eq!(<[usize; 4]>::from_value(&arr.to_value()).unwrap(), arr);
        let opt: Option<f64> = None;
        assert_eq!(Option::<f64>::from_value(&opt.to_value()).unwrap(), None);
        let pair = ("x".to_string(), 9u64);
        assert_eq!(<(String, u64)>::from_value(&pair.to_value()).unwrap(), pair);
    }

    #[test]
    fn box_result_duration_round_trip() {
        let boxed = Box::new(7u64);
        assert_eq!(Box::<u64>::from_value(&boxed.to_value()).unwrap(), boxed);

        let ok: Result<u64, String> = Ok(3);
        let err: Result<u64, String> = Err("boom".to_string());
        assert_eq!(
            Result::<u64, String>::from_value(&ok.to_value()).unwrap(),
            ok
        );
        assert_eq!(
            Result::<u64, String>::from_value(&err.to_value()).unwrap(),
            err
        );

        let d = std::time::Duration::new(3, 999_999_999);
        assert_eq!(std::time::Duration::from_value(&d.to_value()).unwrap(), d);
        let bad = Value::Object(vec![
            ("secs".to_string(), Value::UInt(0)),
            ("nanos".to_string(), Value::UInt(1_000_000_000)),
        ]);
        assert!(std::time::Duration::from_value(&bad).is_err());
    }

    #[test]
    fn missing_field_errors_name_the_owner() {
        let obj = vec![("a".to_string(), Value::UInt(1))];
        let err = field::<u64>(&obj, "b", "Widget").unwrap_err();
        assert!(err.to_string().contains("Widget"));
        assert!(err.to_string().contains("`b`"));
    }
}
