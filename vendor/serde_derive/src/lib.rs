//! Derive macros for the vendored `serde` shim.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are unavailable
//! offline, so this crate parses the item's token stream by hand. It supports
//! exactly the shapes the workspace derives:
//!
//! * structs with named fields (honouring `#[serde(skip)]`),
//! * newtype and tuple structs,
//! * enums with unit and struct variants (externally tagged).
//!
//! Generics are not supported; deriving on a generic type is a compile error
//! pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: its name (or tuple index) and whether `#[serde(skip)]`
/// was present.
struct Field {
    name: String,
    skip: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants,
    /// `Some` with numeric names for tuple variants.
    fields: Option<Vec<Field>>,
    tuple: bool,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported (deriving on `{name}`)");
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            other => panic!("serde shim derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde shim derive: expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Advances past leading `#[...]` attributes and a `pub` / `pub(...)`
/// visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Returns true when an attribute token group (`serde(skip)`, doc comments,
/// `default`, …) is `serde(...)` containing the ident `skip`.
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Parses `field: Type, ...` bodies, tracking `#[serde(skip)]`.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        // Attributes.
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                skip |= attr_is_serde_skip(g);
            }
            i += 2;
        }
        // Visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break; // trailing comma
        };
        let name = name.to_string();
        i += 1;
        assert!(
            matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde shim derive: expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        fields.push(Field { name, skip });
    }
    fields
}

/// Counts fields of a tuple struct body (top-level comma count).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes (`#[default]`, doc comments, …).
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let mut fields = None;
        let mut tuple = false;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                fields = Some(parse_named_fields(g.stream()));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                fields = Some(
                    (0..arity)
                        .map(|idx| Field {
                            name: idx.to_string(),
                            skip: false,
                        })
                        .collect(),
                );
                tuple = true;
                i += 1;
            }
            _ => {}
        }
        // Skip an optional discriminant `= expr` up to the separating comma.
        while i < tokens.len() && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant {
            name,
            fields,
            tuple,
        });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "fields.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         let _ = &mut fields;\n\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "#[automatically_derived]\n\
                     impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             ::serde::Serialize::to_value(&self.0)\n\
                         }}\n\
                     }}"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "#[automatically_derived]\n\
                     impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             ::serde::Value::Array(vec![{}])\n\
                         }}\n\
                     }}",
                    items.join(", ")
                )
            }
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Some(fields) if v.tuple => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    Some(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{pushes}]))]),\n",
                            binds = binds.join(", "),
                            pushes = pushes.join(", ")
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{n}: ::std::default::Default::default(),\n",
                        n = f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::field(obj, \"{n}\", \"{name}\")?,\n",
                        n = f.name
                    ));
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let obj = v.as_object().ok_or_else(|| ::serde::DeError::custom(\
                             format!(\"{name}: expected object, got {{v:?}}\")))?;\n\
                         let _ = obj;\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "#[automatically_derived]\n\
                     impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                             ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                         }}\n\
                     }}"
                )
            } else {
                let parses: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                format!(
                    "#[automatically_derived]\n\
                     impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                             let items = v.as_array().ok_or_else(|| ::serde::DeError::custom(\
                                 format!(\"{name}: expected array, got {{v:?}}\")))?;\n\
                             if items.len() != {arity} {{\n\
                                 return ::std::result::Result::Err(::serde::DeError::custom(\
                                     format!(\"{name}: expected {arity} elements, got {{}}\", items.len())));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}({parses}))\n\
                         }}\n\
                     }}",
                    parses = parses.join(", ")
                )
            }
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    None => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Some(fields) if v.tuple => {
                        let arity = fields.len();
                        let parses: Vec<String> = (0..arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let items = inner.as_array().ok_or_else(|| ::serde::DeError::custom(\
                                     format!(\"{name}::{vn}: expected array, got {{inner:?}}\")))?;\n\
                                 if items.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(::serde::DeError::custom(\
                                         format!(\"{name}::{vn}: expected {arity} elements, got {{}}\", items.len())));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({parses}))\n\
                             }}\n",
                            parses = parses.join(", ")
                        ));
                    }
                    Some(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{n}: ::std::default::Default::default()", n = f.name)
                                } else {
                                    format!(
                                        "{n}: ::serde::field(obj, \"{n}\", \"{name}::{vn}\")?",
                                        n = f.name
                                    )
                                }
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let obj = inner.as_object().ok_or_else(|| ::serde::DeError::custom(\
                                     format!(\"{name}::{vn}: expected object, got {{inner:?}}\")))?;\n\
                                 let _ = obj;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n\
                             }}\n",
                            inits = inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                                     format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 let _ = inner;\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\
                                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                                         format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 format!(\"{name}: expected variant string or single-key object, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
