//! Derive macros for the vendored `serde` shim.
//!
//! The real `serde_derive` depends on `syn`/`quote`, which are unavailable
//! offline, so this crate parses the item's token stream by hand. It supports
//! exactly the shapes the workspace derives:
//!
//! * structs with named fields (honouring `#[serde(skip)]`),
//! * newtype and tuple structs,
//! * enums with unit and struct variants (externally tagged).
//!
//! Each derive emits both the tree path (`to_value` / `from_value`) and the
//! streaming fast path (`stream` / `decode`): the streaming methods visit
//! fields in the same order, skip unknown members, keep the first of
//! duplicate members, and wrap errors with the same owner context — so the
//! two paths accept the same inputs and produce the same output, just
//! without the intermediate `Value` tree.
//!
//! Generics are not supported; deriving on a generic type is a compile error
//! pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: its name (or tuple index) and whether `#[serde(skip)]`
/// was present.
struct Field {
    name: String,
    skip: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    /// `None` for unit variants, `Some(fields)` for struct variants,
    /// `Some` with numeric names for tuple variants.
    fields: Option<Vec<Field>>,
    tuple: bool,
}

enum Item {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde shim derive: expected type name, got {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive: generic types are not supported (deriving on `{name}`)");
    }

    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            other => panic!("serde shim derive: unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde shim derive: expected enum body for `{name}`, got {other:?}"),
        },
        other => panic!("serde shim derive: unsupported item kind `{other}`"),
    }
}

/// Advances past leading `#[...]` attributes and a `pub` / `pub(...)`
/// visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Returns true when an attribute token group (`serde(skip)`, doc comments,
/// `default`, …) is `serde(...)` containing the ident `skip`.
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let inner: Vec<TokenTree> = group.stream().into_iter().collect();
    match (inner.first(), inner.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args)))
            if id.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(a) if a.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Parses `field: Type, ...` bodies, tracking `#[serde(skip)]`.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut skip = false;
        // Attributes.
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                skip |= attr_is_serde_skip(g);
            }
            i += 2;
        }
        // Visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break; // trailing comma
        };
        let name = name.to_string();
        i += 1;
        assert!(
            matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':'),
            "serde shim derive: expected `:` after field `{name}`"
        );
        i += 1;
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // past the comma (or the end)
        fields.push(Field { name, skip });
    }
    fields
}

/// Counts fields of a tuple struct body (top-level comma count).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1;
    let mut trailing_comma = false;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes (`#[default]`, doc comments, …).
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(name)) = tokens.get(i) else {
            break;
        };
        let name = name.to_string();
        i += 1;
        let mut fields = None;
        let mut tuple = false;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                fields = Some(parse_named_fields(g.stream()));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                fields = Some(
                    (0..arity)
                        .map(|idx| Field {
                            name: idx.to_string(),
                            skip: false,
                        })
                        .collect(),
                );
                tuple = true;
                i += 1;
            }
            _ => {}
        }
        // Skip an optional discriminant `= expr` up to the separating comma.
        while i < tokens.len() && !matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
            i += 1;
        }
        i += 1;
        variants.push(Variant {
            name,
            fields,
            tuple,
        });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            let mut streams = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "fields.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
                streams.push_str(&format!(
                    "sink.name(\"{n}\");\n::serde::Serialize::stream(&self.{n}, sink);\n",
                    n = f.name
                ));
            }
            let count = fields.iter().filter(|f| !f.skip).count();
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         let _ = &mut fields;\n\
                         ::serde::Value::Object(fields)\n\
                     }}\n\
                     fn stream(&self, sink: &mut dyn ::serde::Sink) {{\n\
                         sink.object({count});\n\
                         {streams}\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "#[automatically_derived]\n\
                     impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             ::serde::Serialize::to_value(&self.0)\n\
                         }}\n\
                         fn stream(&self, sink: &mut dyn ::serde::Sink) {{\n\
                             ::serde::Serialize::stream(&self.0, sink);\n\
                         }}\n\
                     }}"
                )
            } else {
                let items: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                let streams: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::stream(&self.{i}, sink);"))
                    .collect();
                format!(
                    "#[automatically_derived]\n\
                     impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             ::serde::Value::Array(vec![{items}])\n\
                         }}\n\
                         fn stream(&self, sink: &mut dyn ::serde::Sink) {{\n\
                             sink.array({arity});\n\
                             {streams}\n\
                         }}\n\
                     }}",
                    items = items.join(", "),
                    streams = streams.join("\n")
                )
            }
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            let mut stream_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    None => {
                        arms.push_str(&format!(
                            "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                        ));
                        stream_arms.push_str(&format!("{name}::{vn} => sink.string(\"{vn}\"),\n"));
                    }
                    Some(fields) if v.tuple => {
                        let binds: Vec<String> =
                            (0..fields.len()).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        let streams: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::stream({b}, sink);"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                        stream_arms.push_str(&format!(
                            "{name}::{vn}({binds}) => {{\n\
                                 sink.object(1);\n\
                                 sink.name(\"{vn}\");\n\
                                 sink.array({arity});\n\
                                 {streams}\n\
                             }}\n",
                            binds = binds.join(", "),
                            arity = fields.len(),
                            streams = streams.join("\n")
                        ));
                    }
                    Some(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pushes: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        let streams: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "sink.name(\"{n}\");\n::serde::Serialize::stream({n}, sink);",
                                    n = f.name
                                )
                            })
                            .collect();
                        let count = fields.iter().filter(|f| !f.skip).count();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{pushes}]))]),\n",
                            binds = binds.join(", "),
                            pushes = pushes.join(", ")
                        ));
                        stream_arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n\
                                 sink.object(1);\n\
                                 sink.name(\"{vn}\");\n\
                                 sink.object({count});\n\
                                 {streams}\n\
                             }}\n",
                            binds = binds.join(", "),
                            streams = streams.join("\n")
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                     fn stream(&self, sink: &mut dyn ::serde::Sink) {{\n\
                         match self {{\n{stream_arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

/// Generates the body shared by named-struct and struct-variant streaming
/// decode: read the member count, fill one `Option` slot per known field
/// (first occurrence wins, like `::serde::field` on a tree), skip unknown
/// members, then build `ctor { ... }` erroring on missing fields.
///
/// Mirrors the tree path exactly: unknown members are ignored, duplicate
/// members keep the first occurrence, field parse errors carry the
/// `owner.field:` context, and `#[serde(skip)]` fields come from `Default`.
fn gen_named_decode_body(ctor: &str, owner: &str, fields: &[Field]) -> String {
    let mut slots = String::new();
    let mut arms = String::new();
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!(
                "{n}: ::std::default::Default::default(),\n",
                n = f.name
            ));
            continue;
        }
        slots.push_str(&format!(
            "let mut __f_{n} = ::std::option::Option::None;\n",
            n = f.name
        ));
        arms.push_str(&format!(
            "\"{n}\" if __f_{n}.is_none() => {{\n\
                 __f_{n} = ::std::option::Option::Some(\n\
                     ::serde::Deserialize::decode(src)\n\
                         .map_err(|e| ::serde::DeError::custom(format!(\"{owner}.{n}: {{e}}\")))?,\n\
                 );\n\
             }}\n",
            n = f.name
        ));
        inits.push_str(&format!(
            "{n}: __f_{n}.ok_or_else(|| ::serde::DeError::custom(\"{owner}: missing field `{n}`\"))?,\n",
            n = f.name
        ));
    }
    let member_loop = if arms.is_empty() {
        // No named members to capture: consume and discard everything.
        "for _ in 0..__members {\n\
             let __name = src.name()?;\n\
             let _ = __name;\n\
             src.skip_value()?;\n\
         }\n"
        .to_string()
    } else {
        format!(
            "for _ in 0..__members {{\n\
                 let __name = src.name()?;\n\
                 match __name.as_ref() {{\n\
                     {arms}\
                     _ => src.skip_value()?,\n\
                 }}\n\
             }}\n"
        )
    };
    format!(
        "let __members = src.object().map_err(|e| ::serde::DeError::custom(format!(\"{owner}: {{e}}\")))?;\n\
         {slots}\
         {member_loop}\
         ::std::result::Result::Ok({ctor} {{\n{inits}}})\n"
    )
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{n}: ::std::default::Default::default(),\n",
                        n = f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{n}: ::serde::field(obj, \"{n}\", \"{name}\")?,\n",
                        n = f.name
                    ));
                }
            }
            let decode_body = gen_named_decode_body(name, name, fields);
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let obj = v.as_object().ok_or_else(|| ::serde::DeError::custom(\
                             format!(\"{name}: expected object, got {{v:?}}\")))?;\n\
                         let _ = obj;\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                     fn decode(src: &mut dyn ::serde::Source) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         {decode_body}\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "#[automatically_derived]\n\
                     impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                             ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
                         }}\n\
                         fn decode(src: &mut dyn ::serde::Source) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                             ::std::result::Result::Ok({name}(::serde::Deserialize::decode(src)?))\n\
                         }}\n\
                     }}"
                )
            } else {
                let parses: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                    .collect();
                let stream_parses: Vec<String> = (0..*arity)
                    .map(|_| "::serde::Deserialize::decode(src)?".to_string())
                    .collect();
                format!(
                    "#[automatically_derived]\n\
                     impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                             let items = v.as_array().ok_or_else(|| ::serde::DeError::custom(\
                                 format!(\"{name}: expected array, got {{v:?}}\")))?;\n\
                             if items.len() != {arity} {{\n\
                                 return ::std::result::Result::Err(::serde::DeError::custom(\
                                     format!(\"{name}: expected {arity} elements, got {{}}\", items.len())));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}({parses}))\n\
                         }}\n\
                         fn decode(src: &mut dyn ::serde::Source) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                             let __len = src.array().map_err(|e| ::serde::DeError::custom(\
                                 format!(\"{name}: {{e}}\")))?;\n\
                             if __len != {arity} {{\n\
                                 return ::std::result::Result::Err(::serde::DeError::custom(\
                                     format!(\"{name}: expected {arity} elements, got {{__len}}\")));\n\
                             }}\n\
                             ::std::result::Result::Ok({name}({stream_parses}))\n\
                         }}\n\
                     }}",
                    parses = parses.join(", "),
                    stream_parses = stream_parses.join(", ")
                )
            }
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            let mut stream_unit_arms = String::new();
            let mut stream_data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    None => {
                        unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                        stream_unit_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    Some(fields) if v.tuple => {
                        let arity = fields.len();
                        let parses: Vec<String> = (0..arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        let stream_parses: Vec<String> = (0..arity)
                            .map(|_| "::serde::Deserialize::decode(src)?".to_string())
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let items = inner.as_array().ok_or_else(|| ::serde::DeError::custom(\
                                     format!(\"{name}::{vn}: expected array, got {{inner:?}}\")))?;\n\
                                 if items.len() != {arity} {{\n\
                                     return ::std::result::Result::Err(::serde::DeError::custom(\
                                         format!(\"{name}::{vn}: expected {arity} elements, got {{}}\", items.len())));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({parses}))\n\
                             }}\n",
                            parses = parses.join(", ")
                        ));
                        stream_data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __len = src.array().map_err(|e| ::serde::DeError::custom(\
                                     format!(\"{name}::{vn}: {{e}}\")))?;\n\
                                 if __len != {arity} {{\n\
                                     return ::std::result::Result::Err(::serde::DeError::custom(\
                                         format!(\"{name}::{vn}: expected {arity} elements, got {{__len}}\")));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({stream_parses}))\n\
                             }}\n",
                            stream_parses = stream_parses.join(", ")
                        ));
                    }
                    Some(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{n}: ::std::default::Default::default()", n = f.name)
                                } else {
                                    format!(
                                        "{n}: ::serde::field(obj, \"{n}\", \"{name}::{vn}\")?",
                                        n = f.name
                                    )
                                }
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let obj = inner.as_object().ok_or_else(|| ::serde::DeError::custom(\
                                     format!(\"{name}::{vn}: expected object, got {{inner:?}}\")))?;\n\
                                 let _ = obj;\n\
                                 ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n\
                             }}\n",
                            inits = inits.join(", ")
                        ));
                        let ctor = format!("{name}::{vn}");
                        let decode_body = gen_named_decode_body(&ctor, &ctor, fields);
                        stream_data_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 {decode_body}\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "#[automatically_derived]\n\
                 impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                                     format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                             }},\n\
                             ::serde::Value::Object(entries) if entries.len() == 1 => {{\n\
                                 let (tag, inner) = &entries[0];\n\
                                 let _ = inner;\n\
                                 match tag.as_str() {{\n\
                                     {data_arms}\
                                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                                         format!(\"{name}: unknown variant `{{other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 format!(\"{name}: expected variant string or single-key object, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                     fn decode(src: &mut dyn ::serde::Source) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match src.peek()? {{\n\
                             ::serde::Kind::Str => {{\n\
                                 let __s = src.string()?;\n\
                                 match __s.as_str() {{\n\
                                     {stream_unit_arms}\
                                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                         format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             ::serde::Kind::Object => {{\n\
                                 let __members = src.object()?;\n\
                                 if __members != 1 {{\n\
                                     return ::std::result::Result::Err(::serde::DeError::custom(\
                                         format!(\"{name}: expected variant string or single-key object, got an object of {{__members}} members\")));\n\
                                 }}\n\
                                 let __tag = src.name()?;\n\
                                 match __tag.as_ref() {{\n\
                                     {stream_data_arms}\
                                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                         format!(\"{name}: unknown variant `{{__other}}`\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 format!(\"{name}: expected variant string or single-key object, got {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
