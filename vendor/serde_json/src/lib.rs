//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Renders the vendored [`serde::Value`] tree to JSON text and parses it
//! back. Floats are written with Rust's shortest round-trip formatting, so
//! `to_string` → `from_str` preserves every finite `f64` bit-for-bit (the
//! catalog and model round-trip tests rely on this). Non-finite floats render
//! as `null`, like real serde_json.
//!
//! The writer core is byte-oriented: [`to_writer`] serializes straight into
//! any `io::Write` sink (the HTTP server points it at a reused response
//! buffer), and [`to_string`]/[`to_string_pretty`] are thin UTF-8 wrappers
//! over the same code path — one rendering, bit-identical everywhere. The
//! parser likewise works on raw bytes: [`from_slice`] skips the up-front
//! UTF-8 validation pass ([`from_str`] delegates to it), validating only
//! inside string literals where non-ASCII bytes can actually appear.

use serde::{Deserialize, Serialize, Value};
use std::io::{self, Write};

/// A serialization or parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::new(format!("write failed: {e}"))
    }
}

/// Serializes a value as compact JSON directly into `writer` — no
/// intermediate `String`, no UTF-8 re-validation; response buffers can be
/// reused across calls.
///
/// # Errors
/// Propagates sink write failures (infallible for `Vec<u8>` sinks).
pub fn to_writer<W: Write, T: Serialize + ?Sized>(writer: &mut W, value: &T) -> Result<(), Error> {
    write_value(&value.to_value(), writer, None, 0)?;
    Ok(())
}

/// Serializes a value to compact JSON bytes.
///
/// # Errors
/// Infallible for the supported value shapes; kept as `Result` for API
/// compatibility.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    let mut out = Vec::new();
    to_writer(&mut out, value)?;
    Ok(out)
}

/// Serializes a value to compact JSON.
///
/// # Errors
/// Infallible for the supported value shapes; kept as `Result` for API
/// compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_vec(value).map(|bytes| String::from_utf8(bytes).expect("the JSON writer emits UTF-8"))
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
/// Infallible for the supported value shapes; kept as `Result` for API
/// compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = Vec::new();
    write_value(&value.to_value(), &mut out, Some(2), 0)?;
    Ok(String::from_utf8(out).expect("the JSON writer emits UTF-8"))
}

/// Parses a value from raw JSON bytes. No whole-input UTF-8 pass: JSON
/// structure is ASCII, and string contents are validated where they are
/// decoded, so invalid UTF-8 surfaces as a parse error rather than a
/// separate scan.
///
/// # Errors
/// Fails on malformed JSON, trailing input, or a tree that does not match
/// `T`'s shape.
pub fn from_slice<T: Deserialize>(input: &[u8]) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input,
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

/// Parses a value from JSON text.
///
/// # Errors
/// Fails on malformed JSON, trailing input, or a tree that does not match
/// `T`'s shape.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    from_slice(input.as_bytes())
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value<W: Write>(
    value: &Value,
    out: &mut W,
    indent: Option<usize>,
    depth: usize,
) -> io::Result<()> {
    match value {
        Value::Null => out.write_all(b"null"),
        Value::Bool(true) => out.write_all(b"true"),
        Value::Bool(false) => out.write_all(b"false"),
        Value::Int(i) => write!(out, "{i}"),
        Value::UInt(u) => write!(out, "{u}"),
        Value::Float(f) => {
            if f.is_finite() {
                // {:?} is Rust's shortest round-trip float formatting.
                write!(out, "{f:?}")
            } else {
                out.write_all(b"null")
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                return out.write_all(b"[]");
            }
            out.write_all(b"[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.write_all(b",")?;
                }
                newline_indent(out, indent, depth + 1)?;
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth)?;
            out.write_all(b"]")
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                return out.write_all(b"{}");
            }
            out.write_all(b"{")?;
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.write_all(b",")?;
                }
                newline_indent(out, indent, depth + 1)?;
                write_string(key, out)?;
                out.write_all(b":")?;
                if indent.is_some() {
                    out.write_all(b" ")?;
                }
                write_value(item, out, indent, depth + 1)?;
            }
            newline_indent(out, indent, depth)?;
            out.write_all(b"}")
        }
    }
}

fn newline_indent<W: Write>(out: &mut W, indent: Option<usize>, depth: usize) -> io::Result<()> {
    if let Some(width) = indent {
        out.write_all(b"\n")?;
        for _ in 0..(width * depth) {
            out.write_all(b" ")?;
        }
    }
    Ok(())
}

/// Writes a JSON string literal. Runs of bytes that need no escaping are
/// copied in one `write_all` (multi-byte UTF-8 passes through verbatim);
/// only the escape characters themselves go byte-by-byte.
fn write_string<W: Write>(s: &str, out: &mut W) -> io::Result<()> {
    out.write_all(b"\"")?;
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        let escape: &[u8] = match b {
            b'"' => b"\\\"",
            b'\\' => b"\\\\",
            b'\n' => b"\\n",
            b'\r' => b"\\r",
            b'\t' => b"\\t",
            b if b < 0x20 => {
                if start < i {
                    out.write_all(&bytes[start..i])?;
                }
                write!(out, "\\u{:04x}", b)?;
                start = i + 1;
                continue;
            }
            _ => continue,
        };
        if start < i {
            out.write_all(&bytes[start..i])?;
        }
        out.write_all(escape)?;
        start = i + 1;
    }
    out.write_all(&bytes[start..])?;
    out.write_all(b"\"")
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let second = self.parse_hex4()?;
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| Error::new("empty char"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1f64, 1.0 / 3.0, 48.8679, -2.3256e-5, 1e300] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{json}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a \"quote\"\nnew\tline \\ unicode: é λ 中".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn control_characters_escape_as_u_sequences() {
        let s = "a\u{1}b\u{1f}c".to_string();
        assert_eq!(to_string(&s).unwrap(), "\"a\\u0001b\\u001fc\"");
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escape_parses() {
        let back: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(back, "é😀");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, 2.5f64), (3, 4.5)];
        let json = to_string(&v).unwrap();
        let back: Vec<(u64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn to_writer_matches_to_string_byte_for_byte() {
        let v = vec![
            ("k\"ey".to_string(), vec![0.1f64, -3.25, 1e300]),
            ("é\n".to_string(), vec![]),
        ];
        let mut sink = Vec::new();
        to_writer(&mut sink, &v).unwrap();
        assert_eq!(sink, to_string(&v).unwrap().into_bytes());
        assert_eq!(to_vec(&v).unwrap(), sink);
    }

    #[test]
    fn to_writer_appends_to_a_reused_buffer() {
        let mut sink = b"prefix:".to_vec();
        to_writer(&mut sink, &7u64).unwrap();
        assert_eq!(sink, b"prefix:7");
    }

    #[test]
    fn from_slice_matches_from_str() {
        let json = r#"[[1],[2,3]]"#;
        let via_str: Vec<Vec<u64>> = from_str(json).unwrap();
        let via_slice: Vec<Vec<u64>> = from_slice(json.as_bytes()).unwrap();
        assert_eq!(via_str, via_slice);
    }

    #[test]
    fn from_slice_rejects_invalid_utf8_in_strings() {
        // A lone 0xFF inside a string literal is not UTF-8.
        let bad = [b'"', 0xFF, b'"'];
        assert!(from_slice::<String>(&bad).is_err());
        // Invalid bytes outside any string are a parse error, not a panic.
        assert!(from_slice::<u64>(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = vec![vec![1u64, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u64>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
