//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Renders the vendored [`serde::Value`] tree to JSON text and parses it
//! back. Floats are written with Rust's shortest round-trip formatting, so
//! `to_string` → `from_str` preserves every finite `f64` bit-for-bit (the
//! catalog and model round-trip tests rely on this). Non-finite floats render
//! as `null`, like real serde_json.

use serde::{Deserialize, Serialize, Value};

/// A serialization or parse error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
/// Infallible for the supported value shapes; kept as `Result` for API
/// compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
///
/// # Errors
/// Infallible for the supported value shapes; kept as `Result` for API
/// compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
/// Fails on malformed JSON, trailing input, or a tree that does not match
/// `T`'s shape.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // {:?} is Rust's shortest round-trip float formatting.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected input {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let first = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if !(self.eat_literal("\\u")) {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let second = self.parse_hex4()?;
                                0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid unicode escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the source slice.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = s.chars().next().ok_or_else(|| Error::new("empty char"))?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1f64, 1.0 / 3.0, 48.8679, -2.3256e-5, 1e300] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{json}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a \"quote\"\nnew\tline \\ unicode: é λ 中".to_string();
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escape_parses() {
        let back: String = from_str(r#""é😀""#).unwrap();
        assert_eq!(back, "é😀");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u64, 2.5f64), (3, 4.5)];
        let json = to_string(&v).unwrap();
        let back: Vec<(u64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = vec![vec![1u64, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Vec<Vec<u64>> = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("4x").is_err());
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
